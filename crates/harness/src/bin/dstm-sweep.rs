//! `dstm-sweep` — run one benchmark × scheduler grid from the command line.
//!
//! ```text
//! dstm-sweep [nodes] [txns_per_node] [benchmark] [--hist-out out.json]
//!            [--telemetry] [--epoch-ns N] [--cache]
//! dstm-sweep scenario [rts|tfa|tfa-backoff] [writers] [readers]
//! dstm-sweep kernel [out.json] [--scale S] [--trials N] [--baseline old.json]
//!                   [--filter substr]
//! dstm-sweep large-smoke [nodes] [--shards S] [--cache]
//! ```
//!
//! `--cache` (env `DSTM_CACHE=1`) turns on clock-validated remote-read
//! caching plus same-tick message coalescing — a **protocol variant** that
//! changes simulated results (fewer fetch round trips), unlike `--shards`.
//! `kernel` mode always measures dedicated `"cache": "on"` rows next to the
//! pinned cache-off grid regardless of the flag; those rows never gate the
//! baseline check (old reports lack them) but feed the intra-report
//! `DSTM_CACHE_TOLERANCE` overhead guard (default +40% cpu-ns/commit).
//!
//! `--filter <substr>` (env `DSTM_FILTER`) restricts `kernel` mode to grid
//! cells whose `benchmark/scheduler/nN/backend/kind` label contains the
//! substring (case-insensitive) — for local iteration on one cell family;
//! a filtered report is partial, so don't commit it or gate baselines on it.
//!
//! All simulation modes accept `--shards S` (env `DSTM_SHARDS`) to run each
//! cell on the conservative time-windowed parallel executor
//! (`GenericWorld::run_partitioned`, per-shard-pair lookahead windows), and
//! `--partition round-robin|locality` (env `DSTM_PARTITION`) to pick the
//! node→shard assignment. Results are bit-identical to `--shards 1` under
//! either partitioner — the flags change host wall-clock only — which is
//! what the CI shard-determinism job byte-diffs. `kernel` mode additionally
//! appends a fixed sharded block (160-node Bank/RTS at 1/2/4/8 shards under
//! both partitioners, plus saturated-load rows at
//! `concurrency_per_node = 32`) to every report, regardless of `--shards`;
//! sharded rows carry per-shard event counts and barrier-wait nanoseconds
//! so a speedup (or an honest slowdown on a 1-core host) is attributable.
//!
//! All modes accept `--trace <path>` / `--trace-format jsonl|chrome` (or the
//! `DSTM_TRACE` / `DSTM_TRACE_FORMAT` environment variables) to record
//! protocol events: `scenario` and `large-smoke` trace their whole run, the
//! default sweep traces its first RTS low-contention cell as a
//! representative sample, and `kernel` ignores tracing flags (its `"on"`
//! rows measure the enabled path without writing the log anywhere).
//!
//! `--telemetry` (env `DSTM_TELEMETRY=1`) enables the sim-time epoch
//! sampler on the default sweep's first RTS high-contention cell and
//! writes the merged per-epoch counter series plus per-object wasted-work
//! ranking to `BENCH_timeseries.json`; `--epoch-ns N` (env `DSTM_EPOCH_NS`)
//! overrides the 50 ms epoch length. `kernel` mode always measures
//! telemetry-on rows (`"telemetry": "on"` in the sidecar) and gates the
//! sampler's overhead against the matching plain rows of the same report
//! (`DSTM_TELEMETRY_TOLERANCE`, default +40%).
//!
//! The default mode prints throughput, nested-abort rate, and speedups for
//! every (benchmark, contention, scheduler) cell and writes the latency
//! histogram summaries (commit latency, queue wait, fetch RTT, retries) to
//! `BENCH_trace.json` — override with `--hist-out`.
//!
//! `scenario` mode replays the Fig. 2/3 single-object collision under the
//! given scheduler (default RTS, 6 writers, 2 readers); with `--trace` the
//! JSONL it writes is exactly what `dstm-trace audit` consumes.
//!
//! `kernel` mode times the host wall-clock of every Fig. 4 sweep cell under
//! both event-queue backends (the simulated results are bit-identical, so
//! this isolates kernel cost) and writes a machine-readable JSON report, by
//! default `BENCH_kernel.json`. Each cell runs one untimed warm-up plus
//! `--trials` timed repeats (default 5, env `DSTM_TRIALS`) and reports the
//! **median** wall clock; built with `--features bench-alloc` the final
//! trial also reports heap allocations per event and peak live bytes. Each
//! cell carries a `"trace"` field: `"off"` rows are the production path
//! (tracing compiled in, disabled) and `"on"` rows rerun the bank benchmark
//! with event recording enabled, so the sidecar documents both the
//! zero-cost claim and the enabled-path price. `--scale large` (or
//! `DSTM_SCALE=large`) switches to the 80/160/320-node sweep on the
//! O(1)-memory hashed topology, fanned out over the worker pool, with the
//! sweep-wide peak-allocation counter recorded at the top level.
//!
//! `--baseline old.json` compares the fresh trace-off rows against a
//! previously committed report and exits non-zero if the median ns/event
//! ratio regresses beyond 20% (override with `DSTM_BENCH_TOLERANCE=0.30`).
//!
//! `large-smoke` is the CI entry point for the large-scale path: one
//! 160-node (or `[nodes]`, up to 10k) Bank/RTS cell on the hashed topology.
//! With `--trace` the run records protocol events for `dstm-trace audit`;
//! without it the cell runs untraced (how the 10k-node smoke stays within
//! CI time and memory).

use dstm_benchmarks::Benchmark;
use dstm_harness::alloc_counter;
use dstm_harness::experiments::scenarios::{render, run_collision_traced};
use dstm_harness::experiments::Scale;
use dstm_harness::runner::{
    run_cell, run_cell_telemetry, run_cell_traced, run_cells, Cell, CellResult, TopologySpec,
};
use dstm_harness::traceio::to_chrome_trace;
use hyflow_dstm::{HistSummary, PartitionStrategy, QueueBackend, TelemetryReport, TraceLog};
use rts_core::SchedulerKind;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

impl TraceFormat {
    fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "jsonl" => Some(TraceFormat::Jsonl),
            "chrome" => Some(TraceFormat::Chrome),
            _ => None,
        }
    }
}

struct TraceOpts {
    path: Option<String>,
    format: TraceFormat,
}

impl TraceOpts {
    fn write(&self, trace: &TraceLog) {
        let Some(path) = &self.path else { return };
        let body = match self.format {
            TraceFormat::Jsonl => trace.to_jsonl(),
            TraceFormat::Chrome => to_chrome_trace(trace),
        };
        match std::fs::write(path, body) {
            Ok(()) => println!("[trace: {} records written to {path}]", trace.records.len()),
            Err(e) => eprintln!("could not write trace to {path}: {e}"),
        }
    }
}

struct Flags {
    positional: Vec<String>,
    topts: TraceOpts,
    hist_out: Option<String>,
    /// `--scale` overrides `DSTM_SCALE`; `None` falls through to the env.
    scale: Option<String>,
    /// `--trials` overrides `DSTM_TRIALS`; `None` falls through to the env.
    trials: Option<usize>,
    /// Committed kernel report to regression-check against.
    baseline: Option<String>,
    /// `--shards` overrides `DSTM_SHARDS`; 1 (serial) when absent.
    shards: usize,
    /// `--partition` overrides `DSTM_PARTITION`; round-robin when absent.
    partition: PartitionStrategy,
    /// `--telemetry` (env `DSTM_TELEMETRY=1`): enable the sim-time epoch
    /// sampler on the representative cell and write `BENCH_timeseries.json`.
    telemetry: bool,
    /// `--epoch-ns N` (env `DSTM_EPOCH_NS`): epoch length for the sampler;
    /// `None` keeps the 50 ms default.
    epoch_ns: Option<u64>,
    /// `--cache` (env `DSTM_CACHE=1`): enable the remote-read cache +
    /// message coalescing on the cells this invocation runs.
    cache: bool,
    /// `--filter substr` (env `DSTM_FILTER`): kernel-mode cell filter.
    filter: Option<String>,
}

/// Pull the `--flag value` pairs (with `DSTM_*` env fallbacks) out of the
/// argument list; the rest stay positional.
fn split_flags(args: &[String]) -> Flags {
    let mut positional = Vec::new();
    let mut trace_path = std::env::var("DSTM_TRACE").ok().filter(|s| !s.is_empty());
    let mut format_arg = std::env::var("DSTM_TRACE_FORMAT").ok();
    let mut hist_out = None;
    let mut scale = None;
    let mut trials = None;
    let mut baseline = None;
    let mut shards = None;
    let mut partition = None;
    let mut telemetry = matches!(
        std::env::var("DSTM_TELEMETRY").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    );
    let mut epoch_ns = std::env::var("DSTM_EPOCH_NS")
        .ok()
        .and_then(|s| s.parse().ok());
    let mut cache = matches!(
        std::env::var("DSTM_CACHE").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    );
    let mut filter = std::env::var("DSTM_FILTER").ok().filter(|s| !s.is_empty());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_path = it.next().cloned(),
            "--trace-format" => format_arg = it.next().cloned(),
            "--hist-out" => hist_out = it.next().cloned(),
            "--scale" => scale = it.next().cloned(),
            "--trials" => trials = it.next().and_then(|s| s.parse().ok()),
            "--baseline" => baseline = it.next().cloned(),
            "--shards" => shards = it.next().and_then(|s| s.parse().ok()),
            "--telemetry" => telemetry = true,
            "--epoch-ns" => epoch_ns = it.next().and_then(|s| s.parse().ok()),
            "--cache" => cache = true,
            "--filter" => filter = it.next().cloned(),
            "--partition" => {
                partition = it.next().map(|s| {
                    PartitionStrategy::from_name(s).unwrap_or_else(|| {
                        eprintln!(
                            "unknown partition {s:?} (expected round-robin|locality), \
                             using round-robin"
                        );
                        PartitionStrategy::RoundRobin
                    })
                })
            }
            _ => positional.push(a.clone()),
        }
    }
    let shards = shards
        .or_else(|| {
            std::env::var("DSTM_SHARDS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(1)
        .max(1);
    let partition = partition
        .or_else(|| {
            std::env::var("DSTM_PARTITION")
                .ok()
                .and_then(|s| PartitionStrategy::from_name(&s))
        })
        .unwrap_or_default();
    let format = match format_arg.as_deref() {
        None => TraceFormat::Jsonl,
        Some(s) => TraceFormat::parse(s).unwrap_or_else(|| {
            eprintln!("unknown trace format {s:?} (expected jsonl|chrome), using jsonl");
            TraceFormat::Jsonl
        }),
    };
    Flags {
        positional,
        topts: TraceOpts {
            path: trace_path,
            format,
        },
        hist_out,
        scale,
        trials,
        baseline,
        shards,
        partition,
        telemetry,
        epoch_ns,
        cache,
        filter,
    }
}

/// Worker threads the cell pool will use: `DSTM_WORKERS` if set, else the
/// parallelism the OS reports. Recorded in every report header so numbers
/// are attributable to the host configuration that produced them.
fn effective_workers() -> usize {
    std::env::var("DSTM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

fn scheduler_from_name(s: &str) -> Option<SchedulerKind> {
    match s.to_ascii_lowercase().as_str() {
        "rts" => Some(SchedulerKind::Rts),
        "tfa" => Some(SchedulerKind::Tfa),
        "tfa-backoff" | "tfab" => Some(SchedulerKind::TfaBackoff),
        _ => None,
    }
}

const KERNEL_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

/// Which instrumented path a kernel-grid row measures.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RowKind {
    /// Production path: tracing compiled in but disabled, sampler off.
    Plain,
    /// Protocol-event recording enabled (`run_cell_traced`).
    Traced,
    /// Epoch sampler enabled (`run_cell_telemetry`).
    Telemetry,
    /// Remote-read cache + message coalescing enabled (`--cache`). A
    /// protocol variant: fewer events per commit, so its ns/event is not
    /// comparable to the plain rows' and never gates the baseline.
    Cache,
}

impl RowKind {
    fn label(self) -> &'static str {
        match self {
            RowKind::Plain => "plain",
            RowKind::Traced => "traced",
            RowKind::Telemetry => "telemetry",
            RowKind::Cache => "cache",
        }
    }
}

/// `--filter` predicate: does this grid cell's label contain the substring
/// (case-insensitive)? Labels look like `bank/rts/n20/binary-heap/plain`.
fn spec_matches(filter: Option<&str>, cell: &Cell, kind: &str) -> bool {
    let Some(f) = filter else { return true };
    let label = format!(
        "{}/{}/n{}/{}/{}",
        cell.benchmark.label(),
        cell.scheduler.label(),
        cell.params.nodes,
        cell.dstm.queue_backend.label(),
        kind
    )
    .to_ascii_lowercase();
    label.contains(&f.to_ascii_lowercase())
}

/// One measured kernel cell, ready for printing and the JSON sidecar.
struct KernelRow {
    benchmark: Benchmark,
    nodes: usize,
    scheduler: SchedulerKind,
    backend: QueueBackend,
    topology: &'static str,
    trace: bool,
    /// Whether the epoch sampler ran for this row. `"on"` rows price the
    /// telemetry path; they never gate the baseline check (old reports
    /// lack them) but feed the intra-report overhead guard.
    telemetry: bool,
    /// Whether the remote-read cache (and message coalescing) was on. Cache
    /// rows are a protocol variant — never baseline-gated; they feed the
    /// `DSTM_CACHE_TOLERANCE` overhead guard.
    cache: bool,
    /// Fraction of cache lookups served without a payload fetch (0 with the
    /// cache off).
    cache_hit_rate: f64,
    trials: usize,
    /// Shards of the time-windowed parallel executor (1 = serial loop).
    shards: usize,
    /// Partition strategy label (`round-robin`/`locality`); only meaningful
    /// when `shards > 1` but always recorded for row identity.
    partition: &'static str,
    /// `concurrency_per_node` of the cell (default 4; saturated-load rows
    /// raise it to 32+).
    concurrency: usize,
    /// Events executed by each shard (empty for serial rows). Sums to
    /// `events` minus nothing — every delivered message and timer counts.
    shard_events: Vec<u64>,
    /// Nanoseconds each shard spent waiting at window barriers (empty for
    /// serial rows). High values on few-core hosts are the honest cost of
    /// conservative windows; on real parallel hosts they expose imbalance.
    barrier_wait_ns: Vec<u64>,
    /// Nanoseconds each shard spent executing events inside windows (empty
    /// for serial rows). With `barrier_wait_ns` and `drain_ns` this
    /// decomposes a shard's wall clock into work / waiting / mail exchange.
    execute_ns: Vec<u64>,
    /// Nanoseconds each shard spent posting and draining cross-shard
    /// mailboxes (empty for serial rows).
    drain_ns: Vec<u64>,
    /// Wall clock of the median trial, nanoseconds.
    wall_ns: u64,
    /// Thread-CPU time of the median trial, nanoseconds. ns/event keys off
    /// this: on shared hosts wall clock inflates whenever the bench thread
    /// is preempted, while consumed CPU stays put.
    cpu_ns: u64,
    events: u64,
    commits: u64,
    /// Allocations per event on the final timed trial (0 without
    /// `bench-alloc`, or in pooled large mode where trials overlap).
    allocs_per_event: f64,
    /// Peak live heap bytes on the final timed trial (same caveats).
    peak_alloc_bytes: usize,
}

impl KernelRow {
    fn ns_per_event(&self) -> f64 {
        self.cpu_ns as f64 / self.events.max(1) as f64
    }

    /// Delivered kernel messages per committed transaction — the axis the
    /// cache + coalescing variant moves (a coalesced batch counts once).
    fn messages_per_commit(&self) -> f64 {
        self.events as f64 / self.commits.max(1) as f64
    }

    fn print(&self) {
        let mut line = format!(
            "{:<12} n={:<3} {:<12} {:<9} {:<8} trace={:<3} {:>9.1} ms  {:>7.0} ns/event",
            self.benchmark.label(),
            self.nodes,
            self.scheduler.label(),
            self.backend.label(),
            self.topology,
            if self.trace { "on" } else { "off" },
            self.cpu_ns as f64 / 1e6,
            self.ns_per_event(),
        );
        if self.telemetry {
            line += "  telem=on";
        }
        if self.cache {
            let _ = write!(
                line,
                "  cache=on hit={:.0}% msgs/commit={:.1}",
                self.cache_hit_rate * 100.0,
                self.messages_per_commit()
            );
        }
        if self.shards > 1 || self.concurrency != 4 {
            let _ = write!(
                line,
                "  shards={} part={} conc={} wall {:.1} ms",
                self.shards,
                self.partition,
                self.concurrency,
                self.wall_ns as f64 / 1e6
            );
        }
        if !self.barrier_wait_ns.is_empty() {
            let total: u64 = self.barrier_wait_ns.iter().sum();
            let _ = write!(line, "  barrier {:.1} ms", total as f64 / 1e6);
        }
        if !self.execute_ns.is_empty() {
            let exec: u64 = self.execute_ns.iter().sum();
            let drain: u64 = self.drain_ns.iter().sum();
            let _ = write!(
                line,
                "  exec {:.1} ms drain {:.1} ms",
                exec as f64 / 1e6,
                drain as f64 / 1e6
            );
        }
        if alloc_counter::enabled() && self.allocs_per_event > 0.0 {
            let _ = write!(
                line,
                "  {:>6.2} allocs/event  peak {} KiB",
                self.allocs_per_event,
                self.peak_alloc_bytes / 1024
            );
        }
        println!("{line}");
    }
}

/// Run one cell `trials` times after an untimed warm-up; return the row
/// with the **median** wall clock. The final trial is bracketed by the
/// allocation counters (a no-op without `bench-alloc`).
/// The sequential kernel grid: every benchmark × node count × scheduler
/// under both queue backends (trace off), plus Bank rerun with tracing on.
/// Sequential so timings are not polluted by sibling cells.
///
/// Trials are interleaved **grid-major**: after one untimed warm-up pass,
/// trial `t` runs every cell once before trial `t+1` starts. Back-to-back
/// trials of one cell complete within milliseconds, so a host-contention
/// burst (seconds on shared machines) used to poison all of a cell's
/// trials at once; spread over full grid passes, a burst lands in at most
/// one or two trials of any given cell and the per-cell median rejects it.
fn kernel_grid(scale: &Scale, trials: usize, filter: Option<&str>) -> Vec<KernelRow> {
    let mut specs: Vec<(Cell, RowKind)> = Vec::new();
    for b in Benchmark::ALL {
        for &nodes in &scale.node_counts {
            for s in KERNEL_SCHEDULERS {
                for backend in [QueueBackend::BinaryHeap, QueueBackend::Calendar] {
                    // Pinned serial even under DSTM_SHARDS (and cache-off
                    // even under DSTM_CACHE): these rows are the
                    // baseline-gated kernel-cost measurements; the sharded
                    // and cache blocks cover the variants.
                    let cell = Cell::new(b, s, nodes, 0.9)
                        .with_txns(scale.txns_per_node)
                        .with_queue_backend(backend)
                        .with_shards(1)
                        .with_cache(false);
                    specs.push((cell, RowKind::Plain));
                }
            }
        }
    }
    // Enabled-path rows: bank only, binary heap, every node count. Traced
    // rows price event recording, telemetry rows price the epoch sampler;
    // both compare against the matching plain row.
    for kind in [RowKind::Traced, RowKind::Telemetry] {
        for &nodes in &scale.node_counts {
            for s in KERNEL_SCHEDULERS {
                let cell = Cell::new(Benchmark::Bank, s, nodes, 0.9)
                    .with_txns(scale.txns_per_node)
                    .with_shards(1)
                    .with_cache(false);
                specs.push((cell, kind));
            }
        }
    }
    // Cache-variant rows: every benchmark (the acceptance bar wants the
    // messages-per-commit drop visible on more than one), binary heap,
    // every node count × scheduler, against the matching plain rows.
    for b in Benchmark::ALL {
        for &nodes in &scale.node_counts {
            for s in KERNEL_SCHEDULERS {
                let cell = Cell::new(b, s, nodes, 0.9)
                    .with_txns(scale.txns_per_node)
                    .with_shards(1)
                    .with_cache(true);
                specs.push((cell, RowKind::Cache));
            }
        }
    }
    specs.retain(|(cell, kind)| spec_matches(filter, cell, kind.label()));

    let run = |c: &Cell, kind: RowKind| match kind {
        RowKind::Plain | RowKind::Cache => run_cell(c.clone()),
        RowKind::Traced => run_cell_traced(c.clone()).0,
        RowKind::Telemetry => run_cell_telemetry(c.clone()).0,
    };
    for (cell, kind) in &specs {
        let _warmup = run(cell, *kind);
    }
    let mut timings: Vec<Vec<(u64, u64)>> = vec![Vec::with_capacity(trials); specs.len()];
    let mut counts = vec![(0u64, 0u64); specs.len()]; // (events, commits)
    let mut rates = vec![0f64; specs.len()]; // cache hit rate
    let mut allocs = vec![(0u64, 0usize); specs.len()]; // (allocs, peak bytes)
    for t in 0..trials {
        let counted = t + 1 == trials;
        for (i, (cell, kind)) in specs.iter().enumerate() {
            if counted {
                alloc_counter::reset();
            }
            let r = run(cell, *kind);
            if counted {
                allocs[i] = alloc_counter::snapshot();
            }
            assert!(
                r.completed,
                "{} under {:?} stalled",
                cell.benchmark.label(),
                cell.scheduler
            );
            timings[i].push((r.cpu_ns, r.wall_ns));
            counts[i] = (r.metrics.messages, r.metrics.merged.commits);
            rates[i] = r.metrics.merged.cache_hit_rate();
        }
    }

    let mut rows = Vec::new();
    for (i, (cell, kind)) in specs.iter().enumerate() {
        timings[i].sort_unstable();
        let (cpu_ns, wall_ns) = timings[i][timings[i].len() / 2];
        let (events, commits) = counts[i];
        let (cell_allocs, peak) = allocs[i];
        let row = KernelRow {
            benchmark: cell.benchmark,
            nodes: cell.params.nodes,
            scheduler: cell.scheduler,
            backend: cell.dstm.queue_backend,
            topology: cell.topology.label(),
            trace: *kind == RowKind::Traced,
            telemetry: *kind == RowKind::Telemetry,
            cache: cell.dstm.cache,
            cache_hit_rate: rates[i],
            trials,
            shards: cell.shards,
            partition: cell.partition.label(),
            concurrency: cell.dstm.concurrency_per_node,
            wall_ns,
            cpu_ns,
            events,
            commits,
            allocs_per_event: cell_allocs as f64 / events.max(1) as f64,
            peak_alloc_bytes: peak,
            shard_events: Vec::new(),
            barrier_wait_ns: Vec::new(),
            execute_ns: Vec::new(),
            drain_ns: Vec::new(),
        };
        row.print();
        rows.push(row);
    }
    rows
}

/// The `--scale large` grid: Bank/Vacation/DHT × 160–10k nodes × three
/// schedulers on the hashed O(1)-memory topology, fanned out over the
/// worker pool (per-cell wall clocks come from the runner, so pooling does
/// not skew ns/event). Trials stay at 1 per cell: the pool overlaps cells,
/// so repeat medians would measure scheduling noise, and the cells are big
/// enough that one run is stable.
fn kernel_grid_large(
    scale: &Scale,
    shards: usize,
    partition: PartitionStrategy,
    filter: Option<&str>,
) -> (Vec<KernelRow>, u64, usize) {
    let benches = [Benchmark::Bank, Benchmark::Vacation, Benchmark::Dht];
    let mut cells = Vec::new();
    for b in benches {
        for &nodes in &scale.node_counts {
            for s in KERNEL_SCHEDULERS {
                cells.push(
                    Cell::new(b, s, nodes, 0.9)
                        .with_txns(scale.txns_per_node)
                        .with_topology(TopologySpec::HashedRandom {
                            min_ms: 1,
                            max_ms: 50,
                        })
                        .with_shards(shards)
                        .with_partition(partition),
                );
            }
        }
    }
    cells.retain(|c| spec_matches(filter, c, "large"));
    alloc_counter::reset();
    let results = run_cells(cells, None);
    let (sweep_allocs, sweep_peak) = alloc_counter::snapshot();
    let mut rows = Vec::new();
    for r in results {
        assert!(
            r.completed,
            "{} under {:?} stalled at n={}",
            r.cell.benchmark.label(),
            r.cell.scheduler,
            r.cell.params.nodes
        );
        let row = KernelRow {
            benchmark: r.cell.benchmark,
            nodes: r.cell.params.nodes,
            scheduler: r.cell.scheduler,
            backend: r.cell.dstm.queue_backend,
            topology: r.cell.topology.label(),
            trace: false,
            telemetry: false,
            cache: r.cell.dstm.cache,
            cache_hit_rate: r.metrics.merged.cache_hit_rate(),
            trials: 1,
            shards: r.cell.shards,
            partition: r.cell.partition.label(),
            concurrency: r.cell.dstm.concurrency_per_node,
            wall_ns: r.wall_ns,
            cpu_ns: r.cpu_ns,
            events: r.metrics.messages,
            commits: r.metrics.merged.commits,
            // Cells overlap on the pool, so per-cell allocation numbers
            // would be cross-talk; the sweep-wide totals go at the top level.
            allocs_per_event: 0.0,
            peak_alloc_bytes: 0,
            shard_events: r
                .shard_stats
                .as_ref()
                .map(|s| s.shard_events.clone())
                .unwrap_or_default(),
            barrier_wait_ns: r
                .shard_stats
                .as_ref()
                .map(|s| s.barrier_wait_ns.clone())
                .unwrap_or_default(),
            execute_ns: r
                .shard_stats
                .as_ref()
                .map(|s| s.profiles.iter().map(|p| p.execute_ns).collect())
                .unwrap_or_default(),
            drain_ns: r
                .shard_stats
                .as_ref()
                .map(|s| s.profiles.iter().map(|p| p.drain_ns).collect())
                .unwrap_or_default(),
        };
        row.print();
        rows.push(row);
    }
    (rows, sweep_allocs, sweep_peak)
}

/// The fixed sharded block appended to every kernel report: a 160-node
/// Bank/RTS and RTS/Vacation cell on the hashed topology at 1/2/4/8 shards
/// under both partitioners, plus saturated-load rows
/// (`concurrency_per_node = 32`) at 1 and 4 shards. Simulated results are
/// bit-identical across the whole block (the differential suite proves it),
/// so row-to-row deltas isolate the host cost/benefit of the time-windowed
/// parallel executor and of the partitioner. Speedup claims must key off
/// `wall_ns`: the thread-CPU clock only sees the coordinating thread once
/// worker shards exist. Sharded rows also carry per-shard event counts and
/// barrier-wait nanoseconds (from the last trial; they are deterministic up
/// to barrier timing) so slowdowns are attributable.
///
/// Sequential and grid-major like `kernel_grid`, for the same
/// burst-rejection reason; trials are capped at 3 because each 160-node
/// cell is ~10^3 heavier than the small-grid cells.
fn kernel_grid_sharded(trials: usize, filter: Option<&str>) -> Vec<KernelRow> {
    let trials = trials.min(3);
    let mk = |b, conc: usize, shards: usize, partition: PartitionStrategy| {
        let mut cell = Cell::new(b, SchedulerKind::Rts, 160, 0.9)
            .with_txns(Scale::large().txns_per_node)
            .with_topology(TopologySpec::HashedRandom {
                min_ms: 1,
                max_ms: 50,
            })
            .with_shards(shards)
            .with_partition(partition)
            // Pinned cache-off like the serial grid: these rows gate the
            // sharded baseline, which predates the cache variant.
            .with_cache(false);
        cell.dstm.concurrency_per_node = conc;
        cell
    };
    let mut specs: Vec<Cell> = Vec::new();
    for b in [Benchmark::Bank, Benchmark::Vacation] {
        for shards in [1usize, 2, 4, 8] {
            specs.push(mk(b, 4, shards, PartitionStrategy::RoundRobin));
        }
        // Locality rows: same cells, topology-aware partitioning. The
        // serial row above is the shared baseline.
        for shards in [2usize, 4] {
            specs.push(mk(b, 4, shards, PartitionStrategy::Locality));
        }
    }
    // Saturated-load rows: enough in-flight transactions per node that the
    // pending-event population dwarfs the shard count. These gate the
    // sharded baseline guard.
    for shards in [1usize, 4] {
        specs.push(mk(
            Benchmark::Bank,
            32,
            shards,
            PartitionStrategy::RoundRobin,
        ));
    }
    specs.retain(|c| spec_matches(filter, c, "sharded"));

    for cell in &specs {
        let _warmup = run_cell(cell.clone());
    }
    let mut timings: Vec<Vec<(u64, u64)>> = vec![Vec::with_capacity(trials); specs.len()];
    let mut counts = vec![(0u64, 0u64); specs.len()];
    let mut stats: Vec<Option<dstm_sim::ShardRunStats>> = vec![None; specs.len()];
    for _ in 0..trials {
        for (i, cell) in specs.iter().enumerate() {
            let r = run_cell(cell.clone());
            assert!(
                r.completed,
                "sharded block {} stalled at {} shards ({})",
                cell.benchmark.label(),
                cell.shards,
                cell.partition.label()
            );
            // Median by wall clock: that is the axis sharding moves.
            timings[i].push((r.wall_ns, r.cpu_ns));
            counts[i] = (r.metrics.messages, r.metrics.merged.commits);
            stats[i] = r.shard_stats;
        }
    }

    let mut rows = Vec::new();
    for (i, cell) in specs.iter().enumerate() {
        timings[i].sort_unstable();
        let (wall_ns, cpu_ns) = timings[i][timings[i].len() / 2];
        let (events, commits) = counts[i];
        let stat = stats[i].take();
        let row = KernelRow {
            benchmark: cell.benchmark,
            nodes: cell.params.nodes,
            scheduler: cell.scheduler,
            backend: cell.dstm.queue_backend,
            topology: cell.topology.label(),
            trace: false,
            telemetry: false,
            cache: cell.dstm.cache,
            cache_hit_rate: 0.0,
            trials,
            shards: cell.shards,
            partition: cell.partition.label(),
            concurrency: cell.dstm.concurrency_per_node,
            wall_ns,
            cpu_ns,
            events,
            commits,
            allocs_per_event: 0.0,
            peak_alloc_bytes: 0,
            shard_events: stat
                .as_ref()
                .map(|s| s.shard_events.clone())
                .unwrap_or_default(),
            barrier_wait_ns: stat
                .as_ref()
                .map(|s| s.barrier_wait_ns.clone())
                .unwrap_or_default(),
            execute_ns: stat
                .as_ref()
                .map(|s| s.profiles.iter().map(|p| p.execute_ns).collect())
                .unwrap_or_default(),
            drain_ns: stat
                .map(|s| s.profiles.iter().map(|p| p.drain_ns).collect())
                .unwrap_or_default(),
        };
        row.print();
        rows.push(row);
    }
    for b in [Benchmark::Bank, Benchmark::Vacation] {
        let base = rows
            .iter()
            .find(|r| r.benchmark == b && r.shards == 1 && r.concurrency == 4);
        let best = rows
            .iter()
            .filter(|r| r.benchmark == b && r.shards > 1 && r.concurrency == 4)
            .min_by_key(|r| r.wall_ns);
        if let (Some(base), Some(best)) = (base, best) {
            println!(
                "[sharded {}: best wall-clock {:.2}x at {} shards ({}) vs serial]",
                b.label(),
                base.wall_ns as f64 / best.wall_ns.max(1) as f64,
                best.shards,
                best.partition
            );
        }
    }
    rows
}

fn kernel_json(
    rows: &[KernelRow],
    scale_name: &str,
    sweep_allocs: u64,
    sweep_peak: usize,
) -> String {
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let mut json = String::from("{\n  \"unit\": \"ns\",\n  \"clock\": \"thread_cpu\",\n");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"workers\": {},", effective_workers());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"alloc_counter\": {},", alloc_counter::enabled());
    let _ = writeln!(
        json,
        "  \"sweep_allocs_per_event\": {:.2},",
        sweep_allocs as f64 / total_events.max(1) as f64
    );
    let _ = writeln!(json, "  \"sweep_peak_alloc_bytes\": {sweep_peak},");
    json.push_str("  \"cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"benchmark\": \"{}\", \"nodes\": {}, \"scheduler\": \"{}\", \
             \"backend\": \"{}\", \"topology\": \"{}\", \"trace\": \"{}\", \
             \"telemetry\": \"{}\", \"cache\": \"{}\", \
             \"trials\": {}, \"shards\": {}, \"partition\": \"{}\", \
             \"concurrency\": {}, \"wall_ns\": {}, \"cpu_ns\": {}, \"events\": {}, \
             \"ns_per_event\": {:.1}, \"commits\": {}, \
             \"messages_per_commit\": {:.2}, \"cache_hit_rate\": {:.3}, \
             \"allocs_per_event\": {:.2}, \"peak_alloc_bytes\": {}",
            r.benchmark.label(),
            r.nodes,
            r.scheduler.label(),
            r.backend.label(),
            r.topology,
            if r.trace { "on" } else { "off" },
            if r.telemetry { "on" } else { "off" },
            if r.cache { "on" } else { "off" },
            r.trials,
            r.shards,
            r.partition,
            r.concurrency,
            r.wall_ns,
            r.cpu_ns,
            r.events,
            r.ns_per_event(),
            r.commits,
            r.messages_per_commit(),
            r.cache_hit_rate,
            r.allocs_per_event,
            r.peak_alloc_bytes,
        );
        // Per-shard attribution, sharded rows only. Kept at the line's
        // tail: the line-oriented parser reads scalars by the first
        // `"key": ` match, and these arrays contain no quoted keys.
        if !r.shard_events.is_empty() {
            let fmt = |v: &[u64]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = write!(
                json,
                ", \"shard_events\": [{}], \"barrier_wait_ns\": [{}]",
                fmt(&r.shard_events),
                fmt(&r.barrier_wait_ns)
            );
            if !r.execute_ns.is_empty() {
                let _ = write!(
                    json,
                    ", \"execute_ns\": [{}], \"drain_ns\": [{}]",
                    fmt(&r.execute_ns),
                    fmt(&r.drain_ns)
                );
            }
        }
        let _ = writeln!(json, "}}{}", if i + 1 == rows.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Extract a `"key": "string"` field from one JSON row line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extract a `"key": number` field from one JSON row line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parse the `cells` rows of a kernel report into
/// `(benchmark/nodes/scheduler/backend/trace, ns_per_event)` pairs. The
/// writer emits one row per line, so a line-oriented scan is exact.
///
/// Rows from the sharded block (`shards > 1` or a non-default
/// `concurrency`) are skipped: their ns/event reflects host parallelism
/// and saturation, not kernel cost, and reports written before those
/// fields existed (which omit them — hence the defaults here) could never
/// match them anyway.
fn parse_kernel_rows(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let b = json_str(line, "benchmark")?;
            let nodes = json_num(line, "nodes")?;
            let s = json_str(line, "scheduler")?;
            let backend = json_str(line, "backend")?;
            let trace = json_str(line, "trace")?;
            let nspe = json_num(line, "ns_per_event")?;
            let shards = json_num(line, "shards").unwrap_or(1.0);
            let concurrency = json_num(line, "concurrency").unwrap_or(4.0);
            // Telemetry and cache rows never gate: reports written before
            // those variants existed omit the fields (hence the "off"
            // defaults here), and the cache variant runs a different
            // message pattern so its ns/event is not comparable anyway.
            let telemetry = json_str(line, "telemetry").unwrap_or("off");
            let cache = json_str(line, "cache").unwrap_or("off");
            if shards != 1.0 || concurrency != 4.0 || telemetry == "on" || cache == "on" {
                return None;
            }
            Some((format!("{b}/{nodes}/{s}/{backend}/{trace}"), nspe))
        })
        .collect()
}

/// Parse the saturated-load sharded rows (`concurrency == 32`) of a kernel
/// report into `(key, wall_ns_per_event)` pairs. Wall clock — not thread
/// CPU — is the axis sharding moves, so it is what the sharded guard gates.
fn parse_sharded_rows(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let b = json_str(line, "benchmark")?;
            let nodes = json_num(line, "nodes")?;
            let s = json_str(line, "scheduler")?;
            let trace = json_str(line, "trace")?;
            let shards = json_num(line, "shards")?;
            let concurrency = json_num(line, "concurrency")?;
            let partition = json_str(line, "partition").unwrap_or("round-robin");
            let wall = json_num(line, "wall_ns")?;
            let events = json_num(line, "events")?;
            if trace != "off" || concurrency != 32.0 || events <= 0.0 {
                return None;
            }
            Some((
                format!("{b}/{nodes}/{s}/shards{shards}/{partition}"),
                wall / events,
            ))
        })
        .collect()
}

/// The sharded arm of the baseline guard: compare the saturated-load
/// (`concurrency = 32`) rows' wall-ns/event against the baseline's. Sharded
/// wall clock depends on host parallelism, so the tolerance is looser than
/// the serial guard's and `host_cores`-gated: on a 1-core host the executor
/// is pure overhead measurement and scheduling noise dominates (+60%
/// allowed); with real cores +35%. `DSTM_BENCH_TOLERANCE_SHARDED`
/// overrides. A baseline without matching rows (written before these rows
/// existed) skips with a note rather than failing.
fn sharded_baseline_guard(rows: &[KernelRow], baseline_text: &str, baseline_path: &str) -> bool {
    let old: std::collections::HashMap<String, f64> =
        parse_sharded_rows(baseline_text).into_iter().collect();
    let mut ratios: Vec<f64> = rows
        .iter()
        .filter(|r| !r.trace && !r.cache && r.concurrency == 32 && r.events > 0)
        .filter_map(|r| {
            let key = format!(
                "{}/{}/{}/shards{}/{}",
                r.benchmark.label(),
                r.nodes,
                r.scheduler.label(),
                r.shards,
                r.partition
            );
            let old_nspe = *old.get(&key)?;
            let new_nspe = r.wall_ns as f64 / r.events as f64;
            (old_nspe > 0.0).then_some(new_nspe / old_nspe)
        })
        .collect();
    if ratios.is_empty() {
        println!(
            "[baseline {baseline_path}: no sharded conc=32 rows to compare \
             (pre-partition baseline?), skipping sharded guard]"
        );
        return true;
    }
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let tolerance: f64 = std::env::var("DSTM_BENCH_TOLERANCE_SHARDED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if host_cores == 1 { 0.60 } else { 0.35 });
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    println!(
        "[sharded baseline: {} matching conc=32 rows, median wall-ns/event ratio {median:.3} \
         (tolerance {:.2}, host_cores {host_cores})]",
        ratios.len(),
        1.0 + tolerance
    );
    if median > 1.0 + tolerance {
        eprintln!(
            "BENCH REGRESSION (sharded): median wall-ns/event is {:.1}% over the baseline \
             (allowed {:.0}%)",
            (median - 1.0) * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    true
}

/// Intra-report telemetry-overhead guard: every telemetry-on row compares
/// against the plain row of the same (benchmark, nodes, scheduler,
/// backend) **from the same report**, so host speed cancels out and no
/// baseline file is needed. The epoch sampler is a single branch per event
/// when disabled and a counter snapshot per 50 ms epoch when enabled, so
/// the median cpu-ns/event ratio must stay within
/// `DSTM_TELEMETRY_TOLERANCE` (default +40% — small cells flush few
/// epochs, so the bound mostly rejects accidental hot-path work).
fn telemetry_overhead_guard(rows: &[KernelRow]) -> bool {
    let key = |r: &KernelRow| {
        format!(
            "{}/{}/{}/{}",
            r.benchmark.label(),
            r.nodes,
            r.scheduler.label(),
            r.backend.label()
        )
    };
    let plain: std::collections::HashMap<String, f64> = rows
        .iter()
        .filter(|r| !r.trace && !r.telemetry && !r.cache && r.shards == 1 && r.concurrency == 4)
        .map(|r| (key(r), r.ns_per_event()))
        .collect();
    let mut ratios: Vec<f64> = rows
        .iter()
        .filter(|r| r.telemetry)
        .filter_map(|r| {
            let base = *plain.get(&key(r))?;
            (base > 0.0).then(|| r.ns_per_event() / base)
        })
        .collect();
    if ratios.is_empty() {
        return true;
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    let tolerance: f64 = std::env::var("DSTM_TELEMETRY_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.40);
    println!(
        "[telemetry overhead: {} row pairs, median ns/event ratio {median:.3} \
         (tolerance {:.2})]",
        ratios.len(),
        1.0 + tolerance
    );
    if median > 1.0 + tolerance {
        eprintln!(
            "TELEMETRY OVERHEAD: median ns/event with the epoch sampler on is \
             {:.1}% over the plain path (allowed {:.0}%)",
            (median - 1.0) * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    true
}

/// Intra-report cache-overhead guard: every cache-on row compares against
/// the plain (cache-off, BinaryHeap) row of the same (benchmark, nodes,
/// scheduler) **from the same report**, so host speed cancels out. The
/// cache removes events (fewer fetch round trips), so ns/event would rise
/// mechanically even at zero overhead — the cost axis gated here is
/// **cpu-ns per commit** (host cost per unit of committed work), whose
/// median ratio must stay within `DSTM_CACHE_TOLERANCE` (default +40%).
/// The variant must also actually pay: the median messages-per-commit
/// ratio must not exceed 1.0, with a nonzero median hit rate.
fn cache_overhead_guard(rows: &[KernelRow]) -> bool {
    let key = |r: &KernelRow| {
        format!(
            "{}/{}/{}",
            r.benchmark.label(),
            r.nodes,
            r.scheduler.label()
        )
    };
    let plain: std::collections::HashMap<String, (f64, f64)> = rows
        .iter()
        .filter(|r| {
            !r.trace
                && !r.telemetry
                && !r.cache
                && r.shards == 1
                && r.concurrency == 4
                && r.backend == QueueBackend::BinaryHeap
        })
        .map(|r| {
            let cpu_per_commit = r.cpu_ns as f64 / r.commits.max(1) as f64;
            (key(r), (cpu_per_commit, r.messages_per_commit()))
        })
        .collect();
    let mut cost_ratios: Vec<f64> = Vec::new();
    let mut mpc_ratios: Vec<f64> = Vec::new();
    let mut hit_rates: Vec<f64> = Vec::new();
    for r in rows.iter().filter(|r| r.cache) {
        let Some(&(base_cost, base_mpc)) = plain.get(&key(r)) else {
            continue;
        };
        if base_cost > 0.0 {
            cost_ratios.push(r.cpu_ns as f64 / r.commits.max(1) as f64 / base_cost);
        }
        if base_mpc > 0.0 {
            mpc_ratios.push(r.messages_per_commit() / base_mpc);
        }
        hit_rates.push(r.cache_hit_rate);
    }
    if cost_ratios.is_empty() {
        return true;
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let cost = median(&mut cost_ratios);
    let mpc = median(&mut mpc_ratios);
    let hits = median(&mut hit_rates);
    let tolerance: f64 = std::env::var("DSTM_CACHE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.40);
    println!(
        "[cache guard: {} row pairs, median cpu-ns/commit ratio {cost:.3} (tolerance {:.2}), \
         median msgs/commit ratio {mpc:.3}, median hit rate {:.1}%]",
        cost_ratios.len(),
        1.0 + tolerance,
        hits * 100.0
    );
    if cost > 1.0 + tolerance {
        eprintln!(
            "CACHE OVERHEAD: median cpu-ns/commit with the cache on is {:.1}% over \
             the plain path (allowed {:.0}%)",
            (cost - 1.0) * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    if mpc > 1.0 || hits <= 0.0 {
        eprintln!(
            "CACHE INEFFECTIVE: median msgs/commit ratio {mpc:.3} (must be ≤ 1.0), \
             median hit rate {:.3} (must be > 0)",
            hits
        );
        return false;
    }
    true
}

/// Compare fresh trace-off rows against a committed report: the median
/// new/old ns-per-event ratio across matching rows must stay within the
/// tolerance (default +20%, env `DSTM_BENCH_TOLERANCE`). Returns `false`
/// on regression so `main` can exit non-zero. The saturated sharded rows
/// get their own looser, `host_cores`-gated check
/// ([`sharded_baseline_guard`]).
fn baseline_guard(rows: &[KernelRow], baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let old: std::collections::HashMap<String, f64> =
        parse_kernel_rows(&text).into_iter().collect();
    let mut ratios: Vec<f64> = rows
        .iter()
        // Serial, default-concurrency, trace-off, telemetry-off, cache-off
        // rows only: the sharded block's numbers depend on host core
        // count, so they never gate, and the telemetry and cache rows have
        // their own intra-report guards.
        .filter(|r| !r.trace && !r.telemetry && !r.cache && r.shards == 1 && r.concurrency == 4)
        .filter_map(|r| {
            let key = format!(
                "{}/{}/{}/{}/off",
                r.benchmark.label(),
                r.nodes,
                r.scheduler.label(),
                r.backend.label()
            );
            let old_nspe = *old.get(&key)?;
            (old_nspe > 0.0).then(|| r.ns_per_event() / old_nspe)
        })
        .collect();
    if ratios.is_empty() {
        eprintln!("baseline {baseline_path}: no matching trace-off rows");
        return false;
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    let tolerance: f64 = std::env::var("DSTM_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.20);
    println!(
        "\n[baseline {baseline_path}: {} matching rows, median ns/event ratio {median:.3} \
         (tolerance {:.2})]",
        ratios.len(),
        1.0 + tolerance
    );
    if median > 1.0 + tolerance {
        eprintln!(
            "BENCH REGRESSION: median ns/event is {:.1}% over the baseline \
             (allowed {:.0}%)",
            (median - 1.0) * 100.0,
            tolerance * 100.0
        );
        return false;
    }
    sharded_baseline_guard(rows, &text, baseline_path)
}

/// Wall-clock the kernel grid and write the JSON report; `true` on success
/// (including the optional baseline check).
fn kernel_report(out_path: &str, flags: &Flags) -> bool {
    let scale_name = flags
        .scale
        .clone()
        .or_else(|| std::env::var("DSTM_SCALE").ok())
        .unwrap_or_else(|| "full".into());
    let Some(scale) = Scale::from_name(&scale_name) else {
        eprintln!("unknown scale {scale_name:?} (expected smoke|quick|full|large)");
        return false;
    };
    let trials = flags
        .trials
        .or_else(|| {
            std::env::var("DSTM_TRIALS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(5)
        .max(1);
    println!(
        "[workers={} host_cores={}]",
        effective_workers(),
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let filter = flags.filter.as_deref();
    if let Some(f) = filter {
        println!("[filter {f:?}: report will be partial — do not commit as a baseline]");
    }
    let (mut rows, sweep_allocs, sweep_peak) = if scale_name == "large" {
        kernel_grid_large(&scale, flags.shards, flags.partition, filter)
    } else {
        alloc_counter::reset();
        let rows = kernel_grid(&scale, trials, filter);
        let (a, p) = alloc_counter::snapshot();
        (rows, a, p)
    };
    println!("\n[sharded block: 160-node hashed cells, wall-clock medians]");
    rows.extend(kernel_grid_sharded(trials, filter));
    let json = kernel_json(&rows, &scale_name, sweep_allocs, sweep_peak);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("\n[written to {out_path}]"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    let telemetry_ok = telemetry_overhead_guard(&rows);
    let cache_ok = cache_overhead_guard(&rows);
    let baseline_ok = match &flags.baseline {
        Some(b) => baseline_guard(&rows, b),
        None => true,
    };
    telemetry_ok && cache_ok && baseline_ok
}

/// One large-scale cell, for CI smoke + `dstm-trace audit`. With `--trace`
/// the run records protocol events and writes them out (what the
/// shard-determinism job byte-diffs at 1 vs 4 shards); without it the cell
/// runs untraced, which is what lets the 10k-node smoke cell fit CI time
/// and memory — a 10k-node trace log is millions of records. `--shards` /
/// `--partition` select the executor configuration.
fn large_smoke(positional: &[String], flags: &Flags) {
    let nodes: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    let cell = Cell::new(Benchmark::Bank, SchedulerKind::Rts, nodes, 0.9)
        .with_txns(Scale::large().txns_per_node)
        .with_topology(TopologySpec::HashedRandom {
            min_ms: 1,
            max_ms: 50,
        })
        .with_shards(flags.shards)
        .with_partition(flags.partition)
        .with_cache(flags.cache);
    let (r, trace) = if flags.topts.path.is_some() {
        let (r, t) = run_cell_traced(cell);
        (r, Some(t))
    } else {
        (run_cell(cell), None)
    };
    assert!(r.completed, "large-smoke cell stalled at n={nodes}");
    let mut line = format!(
        "large-smoke: Bank/RTS n={nodes} hashed topology shards={} part={} cache={}  commits={}  \
         events={}  {:.1} ms wall  {:.0} ns/event",
        flags.shards,
        flags.partition.label(),
        if flags.cache { "on" } else { "off" },
        r.metrics.merged.commits,
        r.metrics.messages,
        r.wall_ns as f64 / 1e6,
        r.cpu_ns as f64 / r.metrics.messages.max(1) as f64,
    );
    if flags.cache {
        let _ = write!(
            line,
            "  cache hit rate {:.1}% ({} hits, {} misses, {} inval)",
            r.metrics.merged.cache_hit_rate() * 100.0,
            r.metrics.merged.cache_hits,
            r.metrics.merged.cache_misses,
            r.metrics.merged.cache_invalidations
        );
    }
    if let Some(t) = &trace {
        let _ = write!(line, "  {} trace records", t.records.len());
    }
    if let Some(stats) = &r.shard_stats {
        let barrier: u64 = stats.barrier_wait_ns.iter().sum();
        let exec: u64 = stats.profiles.iter().map(|p| p.execute_ns).sum();
        let drain: u64 = stats.profiles.iter().map(|p| p.drain_ns).sum();
        let _ = write!(
            line,
            "  windows={} shard_events={:?} barrier {:.1} ms exec {:.1} ms drain {:.1} ms",
            stats.windows,
            stats.shard_events,
            barrier as f64 / 1e6,
            exec as f64 / 1e6,
            drain as f64 / 1e6
        );
    }
    println!("{line}");
    if let Some(t) = &trace {
        flags.topts.write(t);
    }
}

/// Replay the Fig. 2/3 collision under one scheduler with tracing on.
fn scenario_mode(positional: &[String], topts: &TraceOpts) {
    let scheduler = positional
        .first()
        .map(|s| {
            scheduler_from_name(s)
                .unwrap_or_else(|| panic!("unknown scheduler {s:?} (rts|tfa|tfa-backoff)"))
        })
        .unwrap_or(SchedulerKind::Rts);
    let writers: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let readers: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let (result, trace) = run_collision_traced(scheduler, writers, readers);
    assert!(result.all_done, "scenario stalled");
    let title = format!(
        "collision scenario: {} writers + {} readers under {}",
        writers,
        readers,
        scheduler.label()
    );
    print!("{}", render(&title, &result));
    for (name, h) in result.metrics.merged.hist_summaries() {
        println!(
            "{name:<22} n={:<5} mean={:<12.0} p50={:<10} p95={:<10} p99={}",
            h.count, h.mean, h.p50, h.p95, h.p99
        );
    }
    topts.write(&trace);
}

type HistRow = (
    Benchmark,
    f64,
    SchedulerKind,
    [(&'static str, HistSummary); 4],
);

/// Write the `BENCH_timeseries.json` sidecar for one telemetry-enabled
/// cell: kernel-report-style provenance headers, then one epoch row per
/// line (counters merged across nodes by epoch index) and the per-object
/// wasted-work ranking. Per-epoch deltas sum to the end-of-run totals —
/// `telemetry_is_passive_and_epoch_sums_reconcile` asserts it, and the
/// `commits`/`aborts`/`wasted_ns` headers here restate the totals so the
/// sidecar is checkable standalone.
fn timeseries_sidecar(out_path: &str, cell: &Cell, r: &CellResult, reports: &[TelemetryReport]) {
    let epochs = hyflow_dstm::merge_epoch_series(reports);
    let objects = hyflow_dstm::merge_object_waste(reports);
    let dropped: u64 = reports.iter().map(|t| t.dropped_epochs).sum();
    let mut json = String::from("{\n  \"unit\": \"ns\",\n  \"clock\": \"sim_time\",\n");
    let _ = writeln!(json, "  \"epoch_ns\": {},", cell.dstm.epoch.0);
    let _ = writeln!(json, "  \"benchmark\": \"{}\",", cell.benchmark.label());
    let _ = writeln!(json, "  \"scheduler\": \"{}\",", cell.scheduler.label());
    let _ = writeln!(json, "  \"nodes\": {},", cell.params.nodes);
    let _ = writeln!(json, "  \"read_ratio\": {},", cell.params.read_ratio);
    let _ = writeln!(json, "  \"txns_per_node\": {},", cell.params.txns_per_node);
    let _ = writeln!(json, "  \"shards\": {},", cell.shards);
    let _ = writeln!(json, "  \"partition\": \"{}\",", cell.partition.label());
    let _ = writeln!(json, "  \"workers\": {},", effective_workers());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"dropped_epochs\": {dropped},");
    let _ = writeln!(json, "  \"commits\": {},", r.metrics.merged.commits);
    let _ = writeln!(json, "  \"aborts\": {},", r.metrics.merged.total_aborts());
    let _ = writeln!(
        json,
        "  \"wasted_ns\": {},",
        r.metrics.merged.wasted_work_ns
    );
    json.push_str("  \"epochs\": [\n");
    for (i, e) in epochs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"epoch\": {}, \"commits\": {}, \"aborts\": {}, \
             \"nested_aborts\": {}, \"enqueued\": {}, \"wasted_ns\": {}, \
             \"wasted_msgs\": {}, \"queue_depth\": {}, \"in_flight\": {}, \
             \"cl_open\": {}}}{}",
            e.epoch,
            e.commits,
            e.aborts,
            e.nested_aborts,
            e.enqueued,
            e.wasted_ns,
            e.wasted_msgs,
            e.queue_depth,
            e.in_flight,
            e.cl_open,
            if i + 1 == epochs.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"objects\": [\n");
    for (i, o) in objects.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"oid\": {}, \"aborts\": {}, \"wasted_ns\": {}}}{}",
            o.oid.0,
            o.aborts,
            o.wasted_ns,
            if i + 1 == objects.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!(
            "[telemetry: {} epochs, {} hot objects written to {out_path}]",
            epochs.len(),
            objects.len()
        ),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

fn hist_sidecar(out_path: &str, rows: &[HistRow], nodes: usize, txns: usize, flags: &Flags) {
    let mut json = String::from("{\n  \"unit\": \"ns\",\n");
    let _ = writeln!(json, "  \"nodes\": {nodes},");
    let _ = writeln!(json, "  \"txns_per_node\": {txns},");
    let _ = writeln!(json, "  \"shards\": {},", flags.shards);
    let _ = writeln!(json, "  \"partition\": \"{}\",", flags.partition.label());
    let _ = writeln!(json, "  \"workers\": {},", effective_workers());
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    json.push_str("  \"cells\": [\n");
    for (i, (b, read_ratio, s, summaries)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"benchmark\": \"{}\", \"read_ratio\": {}, \"scheduler\": \"{}\"",
            b.label(),
            read_ratio,
            s.label()
        );
        for (name, h) in summaries {
            let _ = write!(
                json,
                ", \"{name}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count, h.mean, h.p50, h.p95, h.p99
            );
        }
        let _ = writeln!(json, "}}{}", if i + 1 == rows.len() { "" } else { "," });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("\n[histogram summaries written to {out_path}]"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = split_flags(&args);
    let positional = &flags.positional;
    match positional.first().map(String::as_str) {
        Some("kernel") => {
            let out = positional
                .get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_kernel.json");
            if !kernel_report(out, &flags) {
                std::process::exit(1);
            }
            return;
        }
        Some("large-smoke") => {
            large_smoke(&positional[1..], &flags);
            return;
        }
        Some("scenario") => {
            scenario_mode(&positional[1..], &flags.topts);
            return;
        }
        _ => {}
    }
    let nodes: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let txns: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let only: Option<Benchmark> = positional.get(2).and_then(|s| Benchmark::from_name(s));

    println!(
        "dstm-sweep: {nodes} nodes, {txns} txns/node, delays 1-50 ms, shards={} part={} cache={}\n",
        flags.shards,
        flags.partition.label(),
        if flags.cache { "on" } else { "off" }
    );
    let mut hist_rows = Vec::new();
    let mut trace_opts = Some(&flags.topts); // first RTS low-contention cell only
    let mut telemetry_slot = flags.telemetry; // first RTS high-contention cell only
    for b in Benchmark::ALL {
        if only.is_some_and(|o| o != b) {
            continue;
        }
        for read_ratio in [0.9, 0.1] {
            let contention = if read_ratio > 0.5 { "low " } else { "high" };
            let mut tputs = Vec::new();
            let mut line = format!("{:<12} {contention}", b.label());
            for s in [
                SchedulerKind::Rts,
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
            ] {
                let mut cell = Cell::new(b, s, nodes, read_ratio)
                    .with_txns(txns)
                    .with_shards(flags.shards)
                    .with_partition(flags.partition)
                    .with_cache(flags.cache);
                if let Some(ns) = flags.epoch_ns {
                    cell = cell.with_epoch_ns(ns);
                }
                let r = if s == SchedulerKind::Rts && read_ratio > 0.5 {
                    if let Some(t) = trace_opts.take().filter(|t| t.path.is_some()) {
                        let (r, trace) = run_cell_traced(cell);
                        t.write(&trace);
                        r
                    } else {
                        run_cell(cell)
                    }
                } else if s == SchedulerKind::Rts && read_ratio < 0.5 && telemetry_slot {
                    // The representative high-contention cell: the one
                    // whose epoch series is worth a sidecar.
                    telemetry_slot = false;
                    let spec = cell.clone();
                    let (r, reports) = run_cell_telemetry(cell);
                    timeseries_sidecar("BENCH_timeseries.json", &spec, &r, &reports);
                    r
                } else {
                    run_cell(cell)
                };
                assert!(r.completed, "{} under {s:?} stalled", b.label());
                tputs.push(r.throughput());
                line += &format!(
                    "  {}={:8.2} tx/s (nested {:.2})",
                    s.label(),
                    r.throughput(),
                    r.nested_abort_rate()
                );
                let summaries = r.metrics.merged.hist_summaries();
                hist_rows.push((b, read_ratio, s, summaries));
            }
            line += &format!(
                "  | RTS speedup: {:.2}x vs TFA, {:.2}x vs TFA+Backoff",
                tputs[0] / tputs[1],
                tputs[0] / tputs[2]
            );
            println!("{line}");
        }
    }
    hist_sidecar(
        flags.hist_out.as_deref().unwrap_or("BENCH_trace.json"),
        &hist_rows,
        nodes,
        txns,
        &flags,
    );
}
