//! # dstm-harness — experiment sweeps for the paper reproduction
//!
//! Maps every table and figure of the paper's evaluation (§IV) to a
//! regenerable experiment:
//!
//! | Paper artifact | Module | Bench target (`cargo bench -p dstm-bench`) |
//! |---|---|---|
//! | Table I (nested abort rate) | [`experiments::table1`] | `table1_abort_rate` |
//! | Fig. 4 (throughput, low contention) | [`experiments::throughput`] | `fig4_throughput_low` |
//! | Fig. 5 (throughput, high contention) | [`experiments::throughput`] | `fig5_throughput_high` |
//! | Fig. 6 (speedup summary) | [`experiments::speedup`] | `fig6_speedup` |
//! | Fig. 2 (TFA scenario) | [`experiments::scenarios`] | `fig2_tfa_scenario` |
//! | Fig. 3 (RTS scenario) | [`experiments::scenarios`] | `fig3_rts_scenario` |
//! | §III-D analysis | [`experiments::analysis`] | `analysis_makespan` |
//! | CL-threshold ablation | [`experiments::threshold`] | `ablation_cl_threshold` |
//! | Backoff/deadline ablation | [`experiments::backoff`] | `ablation_backoff` |
//!
//! The [`runner`] executes independent simulation cells on a small
//! scoped-thread worker pool (cells are single-threaded and deterministic, so
//! the sweep is embarrassingly parallel), and [`table`] renders aligned
//! text tables the way the paper prints them.

//! Protocol traces recorded by a run (`Cell::with_trace` /
//! [`runner::run_cell_traced`]) are exported and audited by [`traceio`];
//! the `dstm-trace` binary wraps those audits for the command line.

pub mod alloc_counter;
pub mod experiments;
pub mod runner;
pub mod table;
pub mod traceio;

pub use runner::{
    run_cell, run_cell_telemetry, run_cell_traced, run_cells, Cell, CellResult, TopologySpec,
};
pub use table::{SeriesTable, TextTable};
pub use traceio::{
    analyze, audit, to_chrome_trace, trace_stats, AnalyzeReport, AuditReport,
    DEFAULT_ANALYZE_EPOCH_NS,
};
