//! Trace export and offline auditing for protocol-event logs.
//!
//! Three consumers of a [`TraceLog`]:
//!
//! * [`audit`] — replays a trace and checks protocol invariants that the
//!   live counters cannot express: commit-footprint consistency (a
//!   necessary condition for serializability), write version chains,
//!   enqueue/queue-timeout pairing, and the Table-I nested-abort split
//!   recomputed from spans against the counter-based `RunSummary` record;
//! * [`to_chrome_trace`] — renders the log in Chrome `trace_event` JSON
//!   (open in `chrome://tracing` or Perfetto): one process per node, one
//!   thread lane per transaction, complete-event spans per attempt and
//!   nested child, instants for scheduler decisions / queue service /
//!   migrations;
//! * [`trace_stats`] — a quick textual census of the log.

use hyflow_dstm::{ProtoEvent, TraceLog, Verdict};
use rts_core::{ObjectId, TxId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

/// Outcome of an offline invariant audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub commits_checked: usize,
    pub reads_checked: usize,
    pub writes_checked: usize,
    pub timeout_aborts_checked: usize,
    /// Whether a `RunSummary` record was present to cross-check against.
    pub summary_checked: bool,
    pub violations: Vec<String>,
}

impl AuditReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "audited {} commits ({} reads, {} writes), {} queue-timeout aborts; \
             counter cross-check: {}\n",
            self.commits_checked,
            self.reads_checked,
            self.writes_checked,
            self.timeout_aborts_checked,
            if self.summary_checked {
                "yes"
            } else {
                "no summary record"
            },
        );
        if self.ok() {
            out.push_str("OK: all invariants hold\n");
        } else {
            let _ = writeln!(out, "{} violation(s):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

/// Replay a (time-ordered) trace and check protocol invariants.
///
/// **Footprint consistency.** Each commit's read set `(object, version)`
/// must admit a single instant at which every read version was
/// simultaneously current: version `v` of an object is current from its
/// install (the committing writer's serialization point, which is when the
/// `TxCommit` record is stamped) until the install of the next recorded
/// version. An empty intersection means the commit observed two states that
/// never coexisted — a serializability violation. Under TFA this can never
/// happen (every read is re-validated after the last fetch), so any hit is
/// a protocol bug, not workload noise.
///
/// **Write chains.** Per object, committed writes must form a linear
/// version history: each write's expected (locked) version equals the
/// previously installed one, and the published version strictly exceeds it.
/// A mismatch is a lost update.
///
/// **Queue-timeout pairing.** Every `QueueTimeout` abort must be preceded
/// by a scheduler decision that *enqueued* that same `(tx, attempt)` — a
/// timeout without an enqueue means a deadline timer fired for a requester
/// the owner never parked.
pub fn audit(log: &TraceLog) -> AuditReport {
    let mut report = AuditReport::default();

    // An empty or header-only trace (no protocol records, just RunInfo /
    // RunSummary metadata) means nothing was actually checked: a truncated
    // capture, a run built without `trace_protocol`, or a wrong file.
    // Vacuously passing such an audit is worse than failing it.
    let protocol_records = log
        .records
        .iter()
        .filter(|r| {
            !matches!(
                r.ev,
                ProtoEvent::RunInfo { .. } | ProtoEvent::RunSummary { .. }
            )
        })
        .count();
    if protocol_records == 0 {
        report.violations.push(
            "trace contains no protocol records (empty or header-only file): \
             nothing to audit — was the run traced with trace_protocol?"
                .to_string(),
        );
        return report;
    }

    // Pass 1: per-object install history (version -> install time), in
    // record order (the log is time-ordered).
    let mut installs: HashMap<ObjectId, Vec<(u64, u64)>> = HashMap::new();
    for r in &log.records {
        if let ProtoEvent::TxCommit { writes, .. } = &r.ev {
            for &(oid, _expect, new) in writes {
                installs.entry(oid).or_default().push((new, r.at.0));
            }
        }
    }

    // Window of validity of (oid, version): [install(version), install of
    // the first recorded version > version). Unknown installs (seed
    // versions) open at 0; no successor leaves the window open-ended.
    let window = |oid: ObjectId, version: u64| -> (u64, u64) {
        let hist = installs.get(&oid).map(Vec::as_slice).unwrap_or(&[]);
        let lo = hist
            .iter()
            .find(|&&(v, _)| v == version)
            .map_or(0, |&(_, t)| t);
        let hi = hist
            .iter()
            .filter(|&&(v, _)| v > version)
            .map(|&(_, t)| t)
            .min()
            .unwrap_or(u64::MAX);
        (lo, hi)
    };

    // Pass 2: sequential replay.
    let mut cur_version: HashMap<ObjectId, u64> = HashMap::new();
    let mut enqueued: HashSet<(TxId, u32)> = HashSet::new();
    let mut spans = SpanTotals::default();

    for r in &log.records {
        match &r.ev {
            ProtoEvent::TxCommit {
                tx,
                attempt,
                reads,
                writes,
                ..
            } => {
                report.commits_checked += 1;
                spans.commits += 1;

                let mut lo_max = 0u64;
                let mut hi_min = u64::MAX;
                for &(oid, version) in reads {
                    report.reads_checked += 1;
                    let (lo, hi) = window(oid, version);
                    lo_max = lo_max.max(lo);
                    hi_min = hi_min.min(hi);
                }
                if lo_max >= hi_min {
                    report.violations.push(format!(
                        "commit of {tx} (attempt {attempt}) at t={} has an inconsistent \
                         read footprint: no instant at which all {} read versions coexisted",
                        r.at.0,
                        reads.len()
                    ));
                }

                for &(oid, expect, new) in writes {
                    report.writes_checked += 1;
                    if new <= expect {
                        report.violations.push(format!(
                            "write of {oid} by {tx} does not advance the version \
                             ({expect} -> {new})"
                        ));
                    }
                    if let Some(&prev) = cur_version.get(&oid) {
                        if expect != prev {
                            report.violations.push(format!(
                                "lost update on {oid}: {tx} committed against version \
                                 {expect} but the last installed version is {prev}"
                            ));
                        }
                    }
                    cur_version.insert(oid, new);
                }
            }
            ProtoEvent::SchedDecision {
                tx,
                attempt,
                verdict: Verdict::Enqueue,
                ..
            } => {
                enqueued.insert((*tx, *attempt));
            }
            ProtoEvent::TxAbort {
                tx,
                attempt,
                cause,
                nested_parent,
                wasted_ns,
                msgs,
                aggressor,
                ..
            } => {
                spans.aborts += 1;
                spans.nested_parent += nested_parent;
                spans.wasted_ns += wasted_ns;
                spans.wasted_msgs += msgs;
                spans.attributed += u64::from(aggressor.is_some());
                if *cause == hyflow_dstm::AbortCause::QueueTimeout {
                    report.timeout_aborts_checked += 1;
                    if !enqueued.contains(&(*tx, *attempt)) {
                        report.violations.push(format!(
                            "queue-timeout abort of {tx} (attempt {attempt}) at t={} has \
                             no preceding enqueue decision",
                            r.at.0
                        ));
                    }
                }
            }
            ProtoEvent::NestedCommit { .. } => spans.nested_commits += 1,
            ProtoEvent::NestedAbort { own, parent, .. } => {
                spans.nested_own += own;
                spans.nested_parent += parent;
            }
            ProtoEvent::RunSummary {
                commits,
                aborts,
                nested_own,
                nested_parent,
                nested_commits,
                wasted_ns,
                wasted_msgs,
                attributed,
                ..
            } => {
                report.summary_checked = true;
                let pairs = [
                    ("commits", spans.commits, *commits),
                    ("aborts", spans.aborts, *aborts),
                    ("nested-own aborts", spans.nested_own, *nested_own),
                    ("nested-parent aborts", spans.nested_parent, *nested_parent),
                    ("nested commits", spans.nested_commits, *nested_commits),
                    ("wasted-work ns", spans.wasted_ns, *wasted_ns),
                    ("wasted messages", spans.wasted_msgs, *wasted_msgs),
                    ("attributed aborts", spans.attributed, *attributed),
                ];
                for (label, from_spans, from_counters) in pairs {
                    if from_spans != from_counters {
                        report.violations.push(format!(
                            "Table-I cross-check failed for {label}: {from_spans} \
                             recomputed from spans vs {from_counters} from counters"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    report
}

/// Span-derived totals accumulated during replay (the numbers the
/// counter-based `RunSummary` must match exactly).
#[derive(Default)]
struct SpanTotals {
    commits: u64,
    aborts: u64,
    nested_own: u64,
    nested_parent: u64,
    nested_commits: u64,
    wasted_ns: u64,
    wasted_msgs: u64,
    attributed: u64,
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push_str("\n  ");
    out.push_str(body);
}

/// Render the log as Chrome `trace_event` JSON (the "JSON array format"
/// wrapped in an object). pid = node, tid = transaction sequence number on
/// its origin node; each attempt is an `X` complete event and nested child
/// levels stack beneath it; scheduler decisions, queue service, forwarding
/// and migration are instants on the node that observed them.
pub fn to_chrome_trace(log: &TraceLog) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;

    // Process metadata: one "process" per node.
    let mut nodes: Vec<u32> = log.records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ),
        );
    }

    // Open attempt spans and nested-child stacks per transaction.
    let mut open_attempt: HashMap<TxId, (u64, u32)> = HashMap::new();
    let mut open_children: HashMap<TxId, Vec<(u32, u64)>> = HashMap::new();
    let end_of_log = log.records.last().map_or(0, |r| r.at.0);

    let close_children = |out: &mut String,
                          first: &mut bool,
                          tx: TxId,
                          down_to: u32,
                          at: u64,
                          stacks: &mut HashMap<TxId, Vec<(u32, u64)>>| {
        if let Some(stack) = stacks.get_mut(&tx) {
            while stack.last().is_some_and(|&(lvl, _)| lvl >= down_to) {
                let (lvl, started) = stack.pop().expect("checked");
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"name\":\"child L{lvl}\",\"cat\":\"nested\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                    ),
                );
            }
        }
    };

    for r in &log.records {
        let at = r.at.0;
        match &r.ev {
            ProtoEvent::TxStart { tx, attempt, .. } => {
                open_attempt.insert(*tx, (at, *attempt));
            }
            ProtoEvent::TxCommit { tx, attempt, .. } => {
                close_children(&mut out, &mut first, *tx, 1, at, &mut open_children);
                let (started, a) = open_attempt.remove(tx).unwrap_or((at, *attempt));
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{tx}#a{a} commit\",\"cat\":\"tx\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"args\":{{\"outcome\":\"commit\"}}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                    ),
                );
            }
            ProtoEvent::TxAbort {
                tx, attempt, cause, ..
            } => {
                close_children(&mut out, &mut first, *tx, 1, at, &mut open_children);
                let (started, a) = open_attempt.remove(tx).unwrap_or((at, *attempt));
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{tx}#a{a} abort\",\"cat\":\"tx\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"args\":{{\"outcome\":\"abort\",\"cause\":\"{}\"}}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                        cause.label(),
                    ),
                );
            }
            ProtoEvent::NestedOpen { tx, level, .. } => {
                open_children.entry(*tx).or_default().push((*level, at));
            }
            ProtoEvent::NestedCommit { tx, level, .. }
            | ProtoEvent::NestedAbort { tx, level, .. } => {
                close_children(&mut out, &mut first, *tx, *level, at, &mut open_children);
            }
            ProtoEvent::TxForward { tx, oid, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"forward {oid}\",\"cat\":\"tfa\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                        tx.node,
                        tx.seq,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::SchedDecision {
                oid, tx, verdict, ..
            } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{} {oid} for {tx}\",\"cat\":\"sched\",\"ph\":\"i\",\
                         \"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{:.3}}}",
                        verdict.label(),
                        r.node,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::QueueServed { oid, tx, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"serve {oid} to {tx}\",\"cat\":\"sched\",\"ph\":\"i\",\
                         \"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{:.3}}}",
                        r.node,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::Migrate { oid, from, to, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"migrate {oid}: {from}->{to}\",\"cat\":\"cc\",\
                         \"ph\":\"i\",\"s\":\"g\",\"pid\":{to},\"tid\":0,\"ts\":{:.3}}}",
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::RunInfo { .. } | ProtoEvent::RunSummary { .. } => {}
        }
    }

    // Close anything still open at the end of the log (stalled or
    // budget-cut transactions).
    let open: Vec<TxId> = open_children.keys().copied().collect();
    for tx in open {
        close_children(&mut out, &mut first, tx, 1, end_of_log, &mut open_children);
    }
    for (tx, (started, a)) in open_attempt {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{tx}#a{a} unfinished\",\"cat\":\"tx\",\"ph\":\"X\",\
                 \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                tx.node,
                tx.seq,
                ts_us(started),
                ts_us(end_of_log.saturating_sub(started)),
            ),
        );
    }

    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// One census segment: records between two `RunInfo` markers (or the whole
/// log when no marker is present).
#[derive(Default)]
struct StatsSegment {
    label: Option<String>,
    records: u64,
    by_kind: HashMap<&'static str, u64>,
    commits: u64,
    aborts: u64,
    timeouts: u64,
    enq: u64,
    /// Remote-read cache totals from the segment's `RunSummary` records.
    /// All zero (and unrendered) unless the run had `--cache` on.
    cache_hits: u64,
    cache_misses: u64,
    cache_inval: u64,
}

impl StatsSegment {
    fn render(&self, out: &mut String) {
        match &self.label {
            Some(l) => {
                let _ = writeln!(out, "[{l}] {} records", self.records);
            }
            None => {
                let _ = writeln!(out, "{} records", self.records);
            }
        }
        let mut kinds: Vec<(&str, u64)> = self.by_kind.iter().map(|(&k, &c)| (k, c)).collect();
        kinds.sort();
        for (k, c) in kinds {
            let _ = writeln!(out, "  {k:<16} {c}");
        }
        let _ = writeln!(
            out,
            "commits {}, aborts {} ({} queue timeouts), enqueues {}",
            self.commits, self.aborts, self.timeouts, self.enq
        );
        if self.cache_hits != 0 || self.cache_misses != 0 || self.cache_inval != 0 {
            let lookups = self.cache_hits + self.cache_misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                self.cache_hits as f64 / lookups as f64
            };
            let _ = writeln!(
                out,
                "cache hits {}, misses {} ({:.1}% hit rate), invalidations {}",
                self.cache_hits,
                self.cache_misses,
                rate * 100.0,
                self.cache_inval
            );
        }
    }
}

/// A quick textual census of the log: record counts per kind plus outcome
/// totals. A log carrying `RunInfo` markers (the harness prepends one per
/// traced run) is split into one census block per `(scheduler, node-count)`
/// cell; an unmarked log renders as a single unlabeled block, exactly as
/// before.
pub fn trace_stats(log: &TraceLog) -> String {
    let mut segments: Vec<StatsSegment> = Vec::new();
    for r in &log.records {
        if let ProtoEvent::RunInfo { scheduler, nodes } = &r.ev {
            segments.push(StatsSegment {
                label: Some(format!("{} @ {} nodes", scheduler.label(), nodes)),
                ..StatsSegment::default()
            });
        }
        if segments.is_empty() {
            segments.push(StatsSegment::default());
        }
        let seg = segments.last_mut().expect("segment pushed above");
        seg.records += 1;
        let kind = match &r.ev {
            ProtoEvent::TxStart { .. } => "tx_start",
            ProtoEvent::TxForward { .. } => "tx_forward",
            ProtoEvent::TxCommit { .. } => {
                seg.commits += 1;
                "tx_commit"
            }
            ProtoEvent::TxAbort { cause, .. } => {
                seg.aborts += 1;
                if *cause == hyflow_dstm::AbortCause::QueueTimeout {
                    seg.timeouts += 1;
                }
                "tx_abort"
            }
            ProtoEvent::NestedOpen { .. } => "nested_open",
            ProtoEvent::NestedCommit { .. } => "nested_commit",
            ProtoEvent::NestedAbort { .. } => "nested_abort",
            ProtoEvent::SchedDecision { verdict, .. } => {
                if *verdict == Verdict::Enqueue {
                    seg.enq += 1;
                }
                "sched_decision"
            }
            ProtoEvent::QueueServed { .. } => "queue_served",
            ProtoEvent::Migrate { .. } => "migrate",
            ProtoEvent::RunInfo { .. } => "run_info",
            ProtoEvent::RunSummary {
                cache_hits,
                cache_misses,
                cache_invalidations,
                ..
            } => {
                seg.cache_hits += cache_hits;
                seg.cache_misses += cache_misses;
                seg.cache_inval += cache_invalidations;
                "run_summary"
            }
        };
        *seg.by_kind.entry(kind).or_default() += 1;
    }
    let mut out = String::new();
    if segments.is_empty() {
        let _ = writeln!(out, "0 records");
        return out;
    }
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        seg.render(&mut out);
    }
    if segments.len() > 1 {
        let total: u64 = segments.iter().map(|s| s.records).sum();
        let _ = writeln!(
            out,
            "\ntotal: {} records across {} runs",
            total,
            segments.len()
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Contention analytics
// ---------------------------------------------------------------------------

/// Epoch used to bucket commits for knee detection when the caller does not
/// override it — matches the epoch sampler's default (50 ms of sim-time).
pub const DEFAULT_ANALYZE_EPOCH_NS: u64 = 50_000_000;

/// Contention profile of one object, derived from abort attribution,
/// queue-service, and migration records.
#[derive(Clone, Debug)]
pub struct HotObject {
    pub oid: ObjectId,
    /// Parent-level aborts that blamed this object.
    pub aborts_caused: u64,
    /// Virtual nanoseconds of work those aborts discarded.
    pub wasted_ns: u64,
    /// Times a queued requester was handed this object on release.
    pub serves: u64,
    /// Total queue wait this object induced (sum over `QueueServed`).
    pub wait_induced_ns: u64,
    /// Ownership migrations of this object.
    pub migrations: u64,
}

/// One aggressor transaction's toll: how many victim attempts it killed and
/// how much of their work was discarded.
#[derive(Clone, Debug)]
pub struct Aggressor {
    pub tx: TxId,
    pub victim_aborts: u64,
    pub wasted_ns: u64,
}

/// Commits bucketed into fixed sim-time epochs, plus the detected knee.
#[derive(Clone, Debug, Default)]
pub struct ThroughputSeries {
    pub epoch_ns: u64,
    pub commits_per_epoch: Vec<u64>,
    /// Epoch with the most commits (first such epoch on ties).
    pub peak_epoch: usize,
    /// First epoch after the peak from which throughput never again reaches
    /// half the peak rate — the sustained-collapse point. `None` while the
    /// run keeps (re)attaining ≥ 50% of peak until the end.
    pub knee_epoch: Option<usize>,
}

/// Result of [`analyze`]: hot objects, abort causal chains, throughput
/// knee, and the event-vs-counter wasted-work reconciliation.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeReport {
    pub records: usize,
    /// `RunInfo`-delimited runs seen (0 for unmarked legacy logs).
    pub runs: usize,
    pub hot_objects: Vec<HotObject>,
    pub aggressors: Vec<Aggressor>,
    /// Longest victim → aggressor → … causal chain found (cycle-free walk).
    pub longest_chain: Vec<TxId>,
    pub throughput: ThroughputSeries,
    /// Whether at least one `RunSummary` was present to reconcile against.
    pub summary_checked: bool,
    /// Event-derived vs counter-derived discrepancies; empty means the
    /// wasted-work ledger reconciles exactly.
    pub mismatches: Vec<String>,
    // Event-derived totals.
    pub commits: u64,
    pub aborts: u64,
    pub attributed: u64,
    pub wasted_ns: u64,
    pub wasted_msgs: u64,
}

impl AnalyzeReport {
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = format!(
            "analyzed {} records ({} run{}); counter reconciliation: {}\n",
            self.records,
            self.runs.max(1),
            if self.runs.max(1) == 1 { "" } else { "s" },
            if !self.summary_checked {
                "no summary record".to_string()
            } else if self.ok() {
                "OK".to_string()
            } else {
                format!("{} mismatch(es)", self.mismatches.len())
            },
        );
        let _ = writeln!(
            out,
            "event totals: {} commits, {} aborts ({} attributed to an aggressor), \
             {:.3} ms wasted, {} messages discarded",
            self.commits,
            self.aborts,
            self.attributed,
            ms(self.wasted_ns),
            self.wasted_msgs
        );
        if !self.hot_objects.is_empty() {
            let _ = writeln!(
                out,
                "hot objects (top {} by aborts caused):",
                self.hot_objects.len()
            );
            let _ = writeln!(
                out,
                "  {:<10} {:>7} {:>11} {:>7} {:>10} {:>11}",
                "object", "aborts", "wasted(ms)", "serves", "wait(ms)", "migrations"
            );
            for h in &self.hot_objects {
                let _ = writeln!(
                    out,
                    "  {:<10} {:>7} {:>11.3} {:>7} {:>10.3} {:>11}",
                    h.oid.to_string(),
                    h.aborts_caused,
                    ms(h.wasted_ns),
                    h.serves,
                    ms(h.wait_induced_ns),
                    h.migrations
                );
            }
        }
        if !self.aggressors.is_empty() {
            let _ = writeln!(out, "top aggressors (by wasted work induced):");
            for a in &self.aggressors {
                let _ = writeln!(
                    out,
                    "  {:<10} victims {:<5} wasted(ms) {:.3}",
                    a.tx.to_string(),
                    a.victim_aborts,
                    ms(a.wasted_ns)
                );
            }
        }
        if self.longest_chain.len() > 1 {
            let chain: Vec<String> = self.longest_chain.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(out, "longest abort chain: {}", chain.join(" <- "));
        }
        let t = &self.throughput;
        if !t.commits_per_epoch.is_empty() {
            let peak = t.commits_per_epoch[t.peak_epoch];
            match t.knee_epoch {
                Some(k) => {
                    let _ = writeln!(
                        out,
                        "throughput: peak {} commits in epoch {} ({} ms); knee at epoch {} \
                         (sustained < 50% of peak)",
                        peak,
                        t.peak_epoch,
                        t.epoch_ns / 1_000_000,
                        k
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "throughput: peak {} commits in epoch {} ({} ms); no knee detected",
                        peak,
                        t.peak_epoch,
                        t.epoch_ns / 1_000_000
                    );
                }
            }
        }
        for m in &self.mismatches {
            let _ = writeln!(out, "MISMATCH: {m}");
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled; no serde in-tree).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = format!(
            "{{\"records\":{},\"runs\":{},\"reconciled\":{},\"summary_checked\":{},\
             \"commits\":{},\"aborts\":{},\"attributed\":{},\"wasted_ns\":{},\"wasted_msgs\":{}",
            self.records,
            self.runs,
            self.ok(),
            self.summary_checked,
            self.commits,
            self.aborts,
            self.attributed,
            self.wasted_ns,
            self.wasted_msgs
        );
        out.push_str(",\"hot_objects\":[");
        for (i, h) in self.hot_objects.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"oid\":{},\"aborts\":{},\"wasted_ns\":{},\"serves\":{},\
                 \"wait_ns\":{},\"migrations\":{}}}",
                h.oid.0, h.aborts_caused, h.wasted_ns, h.serves, h.wait_induced_ns, h.migrations
            );
        }
        out.push_str("],\"aggressors\":[");
        for (i, a) in self.aggressors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tx\":[{},{}],\"victims\":{},\"wasted_ns\":{}}}",
                a.tx.node, a.tx.seq, a.victim_aborts, a.wasted_ns
            );
        }
        out.push_str("],\"longest_chain\":[");
        for (i, t) in self.longest_chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", t.node, t.seq);
        }
        let _ = write!(
            out,
            "],\"epoch_ns\":{},\"commits_per_epoch\":[",
            self.throughput.epoch_ns
        );
        for (i, c) in self.throughput.commits_per_epoch.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"peak_epoch\":{}", self.throughput.peak_epoch);
        match self.throughput.knee_epoch {
            Some(k) => {
                let _ = write!(out, ",\"knee_epoch\":{k}");
            }
            None => out.push_str(",\"knee_epoch\":null"),
        }
        out.push_str(",\"mismatches\":[");
        for (i, m) in self.mismatches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(m));
        }
        out.push_str("]}\n");
        out
    }
}

fn hot_entry(map: &mut HashMap<ObjectId, HotObject>, oid: ObjectId) -> &mut HotObject {
    map.entry(oid).or_insert_with(|| HotObject {
        oid,
        aborts_caused: 0,
        wasted_ns: 0,
        serves: 0,
        wait_induced_ns: 0,
        migrations: 0,
    })
}

/// Build the object-conflict picture of a trace: rank hot objects by the
/// aborts and queue wait they caused, rank aggressor transactions by the
/// work they discarded, walk the victim → aggressor causal chains, bucket
/// commits into `epoch_ns` sim-time epochs to locate the throughput knee,
/// and reconcile the event-derived wasted-work ledger against the
/// counter-based `RunSummary` record(s). A reconciliation mismatch makes
/// [`AnalyzeReport::ok`] false — `dstm-trace analyze` exits non-zero on it.
pub fn analyze(log: &TraceLog, epoch_ns: u64) -> AnalyzeReport {
    const TOP_OBJECTS: usize = 8;
    const TOP_AGGRESSORS: usize = 5;
    let epoch_ns = if epoch_ns == 0 {
        DEFAULT_ANALYZE_EPOCH_NS
    } else {
        epoch_ns
    };

    let mut report = AnalyzeReport {
        records: log.records.len(),
        ..AnalyzeReport::default()
    };
    let mut objects: HashMap<ObjectId, HotObject> = HashMap::new();
    let mut aggressors: HashMap<TxId, (u64, u64)> = HashMap::new();
    let mut blamed_by: HashMap<TxId, TxId> = HashMap::new();
    let mut commits_per_epoch: Vec<u64> = Vec::new();
    let mut summary = (0u64, 0u64, 0u64, 0u64, 0u64); // commits, aborts, wasted_ns, msgs, attributed

    for r in &log.records {
        match &r.ev {
            ProtoEvent::RunInfo { .. } => report.runs += 1,
            ProtoEvent::TxCommit { .. } => {
                report.commits += 1;
                let e = (r.at.0 / epoch_ns) as usize;
                if commits_per_epoch.len() <= e {
                    commits_per_epoch.resize(e + 1, 0);
                }
                commits_per_epoch[e] += 1;
            }
            ProtoEvent::TxAbort {
                tx,
                wasted_ns,
                msgs,
                oid,
                aggressor,
                ..
            } => {
                report.aborts += 1;
                report.wasted_ns += wasted_ns;
                report.wasted_msgs += msgs;
                if let Some(blamed) = oid {
                    let h = hot_entry(&mut objects, *blamed);
                    h.aborts_caused += 1;
                    h.wasted_ns += wasted_ns;
                }
                if let Some(agg) = aggressor {
                    report.attributed += 1;
                    let slot = aggressors.entry(*agg).or_default();
                    slot.0 += 1;
                    slot.1 += wasted_ns;
                    blamed_by.insert(*tx, *agg);
                }
            }
            ProtoEvent::QueueServed { oid, wait, .. } => {
                let h = hot_entry(&mut objects, *oid);
                h.serves += 1;
                h.wait_induced_ns += wait.as_nanos();
            }
            ProtoEvent::Migrate { oid, .. } => {
                hot_entry(&mut objects, *oid).migrations += 1;
            }
            ProtoEvent::RunSummary {
                commits,
                aborts,
                wasted_ns,
                wasted_msgs,
                attributed,
                ..
            } => {
                report.summary_checked = true;
                summary.0 += commits;
                summary.1 += aborts;
                summary.2 += wasted_ns;
                summary.3 += wasted_msgs;
                summary.4 += attributed;
            }
            _ => {}
        }
    }

    // Reconciliation: the event-derived ledger must equal the live counters.
    if report.summary_checked {
        let pairs = [
            ("commits", report.commits, summary.0),
            ("aborts", report.aborts, summary.1),
            ("wasted-work ns", report.wasted_ns, summary.2),
            ("wasted messages", report.wasted_msgs, summary.3),
            ("attributed aborts", report.attributed, summary.4),
        ];
        for (label, from_events, from_counters) in pairs {
            if from_events != from_counters {
                report.mismatches.push(format!(
                    "{label}: {from_events} derived from events vs {from_counters} from counters"
                ));
            }
        }
    }

    // Hot objects: aborts caused, then wasted work, then queue wait.
    let mut hot: Vec<HotObject> = objects.into_values().collect();
    hot.sort_by(|a, b| {
        (b.aborts_caused, b.wasted_ns, b.wait_induced_ns, a.oid.0).cmp(&(
            a.aborts_caused,
            a.wasted_ns,
            a.wait_induced_ns,
            b.oid.0,
        ))
    });
    hot.truncate(TOP_OBJECTS);
    report.hot_objects = hot;

    // Aggressors by wasted work induced.
    let mut aggs: Vec<Aggressor> = aggressors
        .into_iter()
        .map(|(tx, (victim_aborts, wasted_ns))| Aggressor {
            tx,
            victim_aborts,
            wasted_ns,
        })
        .collect();
    aggs.sort_by(|a, b| {
        (b.wasted_ns, b.victim_aborts, (a.tx.node, a.tx.seq)).cmp(&(
            a.wasted_ns,
            a.victim_aborts,
            (b.tx.node, b.tx.seq),
        ))
    });
    aggs.truncate(TOP_AGGRESSORS);
    report.aggressors = aggs;

    // Longest causal chain: victim -> aggressor -> (that aggressor's own
    // aggressor, if it too aborted) -> …, cycle-guarded.
    let mut best: Vec<TxId> = Vec::new();
    for &start in blamed_by.keys() {
        let mut chain = vec![start];
        let mut seen: HashSet<TxId> = HashSet::new();
        seen.insert(start);
        let mut cur = start;
        while let Some(&next) = blamed_by.get(&cur) {
            if !seen.insert(next) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        if chain.len() > best.len()
            || (chain.len() == best.len()
                && best
                    .first()
                    .is_some_and(|b| (start.node, start.seq) < (b.node, b.seq)))
        {
            best = chain;
        }
    }
    report.longest_chain = best;

    // Throughput knee: the first post-peak epoch from which every later
    // epoch stays below half the peak rate.
    if !commits_per_epoch.is_empty() {
        let peak_epoch = commits_per_epoch
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let peak = commits_per_epoch[peak_epoch];
        let half = peak.div_ceil(2);
        let mut knee = None;
        for i in (peak_epoch + 1..commits_per_epoch.len()).rev() {
            if commits_per_epoch[i] >= half {
                break;
            }
            knee = Some(i);
        }
        report.throughput = ThroughputSeries {
            epoch_ns,
            commits_per_epoch,
            peak_epoch,
            knee_epoch: knee,
        };
    } else {
        report.throughput.epoch_ns = epoch_ns;
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstm_sim::{SimDuration, SimTime};
    use hyflow_dstm::{AbortCause, TraceRecord};
    use rts_core::TxKind;

    fn rec(at: u64, node: u32, ev: ProtoEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime(at),
            node,
            ev,
        }
    }

    fn commit(
        at: u64,
        tx: TxId,
        reads: Vec<(ObjectId, u64)>,
        writes: Vec<(ObjectId, u64, u64)>,
    ) -> TraceRecord {
        rec(
            at,
            tx.node,
            ProtoEvent::TxCommit {
                tx,
                attempt: 0,
                nested_committed: 0,
                reads,
                writes,
            },
        )
    }

    #[test]
    fn clean_history_passes() {
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(1, 1);
        let o = ObjectId(1);
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![(o, 0)], vec![(o, 0, 1)]),
                commit(200, t2, vec![(o, 1)], vec![(o, 1, 2)]),
            ],
        };
        let report = audit(&log);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.commits_checked, 2);
    }

    #[test]
    fn lost_update_is_flagged() {
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(1, 1);
        let o = ObjectId(1);
        // Both commits were built against version 0: the second one
        // overwrites the first's update.
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![(o, 0)], vec![(o, 0, 1)]),
                commit(200, t2, vec![(o, 0)], vec![(o, 0, 2)]),
            ],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(report.violations[0].contains("lost update"), "{report:?}");
    }

    #[test]
    fn inconsistent_read_footprint_is_flagged() {
        let (t1, t2, t3) = (TxId::new(0, 1), TxId::new(1, 1), TxId::new(2, 1));
        let (a, b) = (ObjectId(1), ObjectId(2));
        // a@1 dies at t=200 (a@2 installed); b@5 is born at t=300. A commit
        // reading {a@1, b@5} observed two states that never coexisted.
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![], vec![(a, 0, 1)]),
                commit(200, t1, vec![], vec![(a, 1, 2)]),
                commit(300, t2, vec![], vec![(b, 0, 5)]),
                commit(400, t3, vec![(a, 1), (b, 5)], vec![]),
            ],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("inconsistent read footprint"),
            "{report:?}"
        );
    }

    #[test]
    fn timeout_without_enqueue_is_flagged() {
        let tx = TxId::new(1, 1);
        let log = TraceLog {
            records: vec![rec(
                500,
                1,
                ProtoEvent::TxAbort {
                    tx,
                    attempt: 0,
                    cause: AbortCause::QueueTimeout,
                    nested_parent: 0,
                    backoff: SimDuration::ZERO,
                    wasted_ns: 0,
                    msgs: 0,
                    oid: None,
                    aggressor: None,
                },
            )],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("no preceding enqueue"),
            "{report:?}"
        );
    }

    #[test]
    fn paired_timeout_passes() {
        let tx = TxId::new(1, 1);
        let o = ObjectId(1);
        let log = TraceLog {
            records: vec![
                rec(
                    100,
                    0,
                    ProtoEvent::SchedDecision {
                        oid: o,
                        tx,
                        attempt: 0,
                        local_cl: 1,
                        requester_cl: 0,
                        window_requests: 1,
                        executed: SimDuration::from_millis(10),
                        remaining: SimDuration::from_millis(5),
                        queue_depth: 1,
                        bk: SimDuration::from_millis(5),
                        threshold: Some(16),
                        verdict: Verdict::Enqueue,
                        backoff: SimDuration::from_millis(5),
                    },
                ),
                rec(
                    900,
                    1,
                    ProtoEvent::TxAbort {
                        tx,
                        attempt: 0,
                        cause: AbortCause::QueueTimeout,
                        nested_parent: 0,
                        backoff: SimDuration::ZERO,
                        wasted_ns: 0,
                        msgs: 0,
                        oid: Some(o),
                        aggressor: None,
                    },
                ),
            ],
        };
        let report = audit(&log);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.timeout_aborts_checked, 1);
    }

    #[test]
    fn summary_mismatch_is_flagged() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                commit(100, tx, vec![], vec![]),
                rec(
                    200,
                    0,
                    ProtoEvent::RunSummary {
                        commits: 2, // spans saw 1
                        aborts: 0,
                        nested_own: 0,
                        nested_parent: 0,
                        nested_commits: 0,
                        wasted_ns: 0,
                        wasted_msgs: 0,
                        attributed: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_invalidations: 0,
                    },
                ),
            ],
        };
        let report = audit(&log);
        assert!(report.summary_checked);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("Table-I cross-check failed"),
            "{report:?}"
        );
    }

    #[test]
    fn chrome_export_produces_valid_shape() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::TxStart {
                        tx,
                        kind: TxKind(1),
                        attempt: 0,
                    },
                ),
                rec(
                    1_000,
                    0,
                    ProtoEvent::NestedOpen {
                        tx,
                        attempt: 0,
                        level: 1,
                        kind: TxKind(2),
                    },
                ),
                rec(
                    2_000,
                    0,
                    ProtoEvent::NestedCommit {
                        tx,
                        attempt: 0,
                        level: 1,
                    },
                ),
                commit(3_000, tx, vec![(ObjectId(1), 0)], vec![(ObjectId(1), 0, 1)]),
            ],
        };
        let chrome = to_chrome_trace(&log);
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\":\"M\""), "process metadata present");
        assert!(chrome.contains("child L1"), "nested span present");
        assert!(chrome.contains("commit"), "attempt span present");
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance =
            |open: char, close: char| chrome.matches(open).count() == chrome.matches(close).count();
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn stats_census_counts_kinds() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::TxStart {
                        tx,
                        kind: TxKind(1),
                        attempt: 0,
                    },
                ),
                commit(1_000, tx, vec![], vec![]),
            ],
        };
        let s = trace_stats(&log);
        assert!(s.contains("2 records"));
        assert!(s.contains("tx_start"));
        assert!(s.contains("commits 1"));
    }

    #[test]
    fn stats_split_per_scheduler_and_node_count() {
        use hyflow_dstm::SchedLabel;
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::RunInfo {
                        scheduler: SchedLabel::Rts,
                        nodes: 8,
                    },
                ),
                commit(1_000, tx, vec![], vec![]),
                rec(
                    2_000,
                    0,
                    ProtoEvent::RunInfo {
                        scheduler: SchedLabel::Tfa,
                        nodes: 16,
                    },
                ),
                commit(3_000, tx, vec![], vec![]),
                commit(4_000, tx, vec![], vec![]),
            ],
        };
        let s = trace_stats(&log);
        assert!(s.contains("[RTS @ 8 nodes] 2 records"), "{s}");
        assert!(s.contains("[TFA @ 16 nodes] 3 records"), "{s}");
        assert!(s.contains("total: 5 records across 2 runs"), "{s}");
    }

    fn abort_blaming(
        at: u64,
        tx: TxId,
        wasted_ns: u64,
        msgs: u64,
        oid: Option<ObjectId>,
        aggressor: Option<TxId>,
    ) -> TraceRecord {
        rec(
            at,
            tx.node,
            ProtoEvent::TxAbort {
                tx,
                attempt: 0,
                cause: AbortCause::SchedulerAbort,
                nested_parent: 0,
                backoff: SimDuration::ZERO,
                wasted_ns,
                msgs,
                oid,
                aggressor,
            },
        )
    }

    #[test]
    fn analyze_ranks_hot_objects_chains_aggressors_and_reconciles() {
        use hyflow_dstm::SchedLabel;
        let (t0, t1, t2) = (TxId::new(0, 1), TxId::new(1, 1), TxId::new(2, 1));
        let (a, b) = (ObjectId(1), ObjectId(2));
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::RunInfo {
                        scheduler: SchedLabel::Rts,
                        nodes: 3,
                    },
                ),
                // t1 aborted twice on `a` at t0's hands; t0 once on `b` at t2's.
                abort_blaming(1_000, t1, 500, 2, Some(a), Some(t0)),
                abort_blaming(2_000, t1, 700, 3, Some(a), Some(t0)),
                abort_blaming(3_000, t0, 300, 1, Some(b), Some(t2)),
                rec(
                    4_000,
                    0,
                    ProtoEvent::QueueServed {
                        oid: a,
                        tx: t1,
                        attempt: 2,
                        wait: SimDuration::from_nanos(900),
                    },
                ),
                rec(
                    5_000,
                    1,
                    ProtoEvent::Migrate {
                        oid: a,
                        tx: t1,
                        from: 0,
                        to: 1,
                        version: 1,
                    },
                ),
                commit(6_000, t1, vec![], vec![(a, 0, 1)]),
                rec(
                    7_000,
                    0,
                    ProtoEvent::RunSummary {
                        commits: 1,
                        aborts: 3,
                        nested_own: 0,
                        nested_parent: 0,
                        nested_commits: 0,
                        wasted_ns: 1_500,
                        wasted_msgs: 6,
                        attributed: 3,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_invalidations: 0,
                    },
                ),
            ],
        };
        let report = analyze(&log, 0);
        assert!(report.ok(), "{:?}", report.mismatches);
        assert!(report.summary_checked);
        assert_eq!(report.runs, 1);
        assert_eq!(
            (report.commits, report.aborts, report.attributed),
            (1, 3, 3)
        );
        assert_eq!((report.wasted_ns, report.wasted_msgs), (1_500, 6));
        // `a` caused 2 aborts (1200 ns wasted), served once, migrated once.
        let top = &report.hot_objects[0];
        assert_eq!(top.oid, a);
        assert_eq!(
            (
                top.aborts_caused,
                top.wasted_ns,
                top.serves,
                top.wait_induced_ns,
                top.migrations
            ),
            (2, 1_200, 1, 900, 1)
        );
        // t0 discarded the most work (1200 ns over 2 victims).
        assert_eq!(report.aggressors[0].tx, t0);
        assert_eq!(
            (
                report.aggressors[0].victim_aborts,
                report.aggressors[0].wasted_ns
            ),
            (2, 1_200)
        );
        // Causal chain t1 <- t0 <- t2.
        assert_eq!(report.longest_chain, vec![t1, t0, t2]);
        // JSON is well formed (cheap balance check) and carries the verdict.
        let json = report.to_json();
        assert!(json.contains("\"reconciled\":true"), "{json}");
        let balance =
            |open: char, close: char| json.matches(open).count() == json.matches(close).count();
        assert!(balance('{', '}') && balance('[', ']'));
        // Human rendering names the hot object and the chain.
        let text = report.render();
        assert!(text.contains("hot objects"), "{text}");
        assert!(text.contains("longest abort chain"), "{text}");
    }

    #[test]
    fn analyze_flags_wasted_work_mismatch() {
        let t1 = TxId::new(1, 1);
        let log = TraceLog {
            records: vec![
                abort_blaming(1_000, t1, 500, 2, Some(ObjectId(1)), None),
                rec(
                    2_000,
                    0,
                    ProtoEvent::RunSummary {
                        commits: 0,
                        aborts: 1,
                        nested_own: 0,
                        nested_parent: 0,
                        nested_commits: 0,
                        wasted_ns: 499, // events say 500
                        wasted_msgs: 2,
                        attributed: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_invalidations: 0,
                    },
                ),
            ],
        };
        let report = analyze(&log, 0);
        assert!(!report.ok());
        assert!(
            report.mismatches[0].contains("wasted-work ns"),
            "{:?}",
            report.mismatches
        );
        assert!(report.to_json().contains("\"reconciled\":false"));
    }

    #[test]
    fn analyze_finds_throughput_knee() {
        let tx = TxId::new(0, 1);
        let epoch = 1_000u64;
        // Epochs: 4, 4, 1, 1 commits — sustained collapse from epoch 2 on.
        let mut records = Vec::new();
        for (e, n) in [(0u64, 4u64), (1, 4), (2, 1), (3, 1)] {
            for i in 0..n {
                records.push(commit(e * epoch + i, tx, vec![], vec![]));
            }
        }
        let log = TraceLog { records };
        let report = analyze(&log, epoch);
        assert_eq!(report.throughput.commits_per_epoch, vec![4, 4, 1, 1]);
        assert_eq!(report.throughput.peak_epoch, 0);
        assert_eq!(report.throughput.knee_epoch, Some(2));
        // A flat series has no knee.
        let flat = TraceLog {
            records: (0..4)
                .map(|e| commit(e * epoch, tx, vec![], vec![]))
                .collect(),
        };
        assert_eq!(analyze(&flat, epoch).throughput.knee_epoch, None);
    }
}
