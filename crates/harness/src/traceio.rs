//! Trace export and offline auditing for protocol-event logs.
//!
//! Three consumers of a [`TraceLog`]:
//!
//! * [`audit`] — replays a trace and checks protocol invariants that the
//!   live counters cannot express: commit-footprint consistency (a
//!   necessary condition for serializability), write version chains,
//!   enqueue/queue-timeout pairing, and the Table-I nested-abort split
//!   recomputed from spans against the counter-based `RunSummary` record;
//! * [`to_chrome_trace`] — renders the log in Chrome `trace_event` JSON
//!   (open in `chrome://tracing` or Perfetto): one process per node, one
//!   thread lane per transaction, complete-event spans per attempt and
//!   nested child, instants for scheduler decisions / queue service /
//!   migrations;
//! * [`trace_stats`] — a quick textual census of the log.

use hyflow_dstm::{ProtoEvent, TraceLog, Verdict};
use rts_core::{ObjectId, TxId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

/// Outcome of an offline invariant audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub commits_checked: usize,
    pub reads_checked: usize,
    pub writes_checked: usize,
    pub timeout_aborts_checked: usize,
    /// Whether a `RunSummary` record was present to cross-check against.
    pub summary_checked: bool,
    pub violations: Vec<String>,
}

impl AuditReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "audited {} commits ({} reads, {} writes), {} queue-timeout aborts; \
             counter cross-check: {}\n",
            self.commits_checked,
            self.reads_checked,
            self.writes_checked,
            self.timeout_aborts_checked,
            if self.summary_checked {
                "yes"
            } else {
                "no summary record"
            },
        );
        if self.ok() {
            out.push_str("OK: all invariants hold\n");
        } else {
            let _ = writeln!(out, "{} violation(s):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

/// Replay a (time-ordered) trace and check protocol invariants.
///
/// **Footprint consistency.** Each commit's read set `(object, version)`
/// must admit a single instant at which every read version was
/// simultaneously current: version `v` of an object is current from its
/// install (the committing writer's serialization point, which is when the
/// `TxCommit` record is stamped) until the install of the next recorded
/// version. An empty intersection means the commit observed two states that
/// never coexisted — a serializability violation. Under TFA this can never
/// happen (every read is re-validated after the last fetch), so any hit is
/// a protocol bug, not workload noise.
///
/// **Write chains.** Per object, committed writes must form a linear
/// version history: each write's expected (locked) version equals the
/// previously installed one, and the published version strictly exceeds it.
/// A mismatch is a lost update.
///
/// **Queue-timeout pairing.** Every `QueueTimeout` abort must be preceded
/// by a scheduler decision that *enqueued* that same `(tx, attempt)` — a
/// timeout without an enqueue means a deadline timer fired for a requester
/// the owner never parked.
pub fn audit(log: &TraceLog) -> AuditReport {
    let mut report = AuditReport::default();

    // Pass 1: per-object install history (version -> install time), in
    // record order (the log is time-ordered).
    let mut installs: HashMap<ObjectId, Vec<(u64, u64)>> = HashMap::new();
    for r in &log.records {
        if let ProtoEvent::TxCommit { writes, .. } = &r.ev {
            for &(oid, _expect, new) in writes {
                installs.entry(oid).or_default().push((new, r.at.0));
            }
        }
    }

    // Window of validity of (oid, version): [install(version), install of
    // the first recorded version > version). Unknown installs (seed
    // versions) open at 0; no successor leaves the window open-ended.
    let window = |oid: ObjectId, version: u64| -> (u64, u64) {
        let hist = installs.get(&oid).map(Vec::as_slice).unwrap_or(&[]);
        let lo = hist
            .iter()
            .find(|&&(v, _)| v == version)
            .map_or(0, |&(_, t)| t);
        let hi = hist
            .iter()
            .filter(|&&(v, _)| v > version)
            .map(|&(_, t)| t)
            .min()
            .unwrap_or(u64::MAX);
        (lo, hi)
    };

    // Pass 2: sequential replay.
    let mut cur_version: HashMap<ObjectId, u64> = HashMap::new();
    let mut enqueued: HashSet<(TxId, u32)> = HashSet::new();
    let mut spans = SpanTotals::default();

    for r in &log.records {
        match &r.ev {
            ProtoEvent::TxCommit {
                tx,
                attempt,
                reads,
                writes,
                ..
            } => {
                report.commits_checked += 1;
                spans.commits += 1;

                let mut lo_max = 0u64;
                let mut hi_min = u64::MAX;
                for &(oid, version) in reads {
                    report.reads_checked += 1;
                    let (lo, hi) = window(oid, version);
                    lo_max = lo_max.max(lo);
                    hi_min = hi_min.min(hi);
                }
                if lo_max >= hi_min {
                    report.violations.push(format!(
                        "commit of {tx} (attempt {attempt}) at t={} has an inconsistent \
                         read footprint: no instant at which all {} read versions coexisted",
                        r.at.0,
                        reads.len()
                    ));
                }

                for &(oid, expect, new) in writes {
                    report.writes_checked += 1;
                    if new <= expect {
                        report.violations.push(format!(
                            "write of {oid} by {tx} does not advance the version \
                             ({expect} -> {new})"
                        ));
                    }
                    if let Some(&prev) = cur_version.get(&oid) {
                        if expect != prev {
                            report.violations.push(format!(
                                "lost update on {oid}: {tx} committed against version \
                                 {expect} but the last installed version is {prev}"
                            ));
                        }
                    }
                    cur_version.insert(oid, new);
                }
            }
            ProtoEvent::SchedDecision {
                tx,
                attempt,
                verdict: Verdict::Enqueue,
                ..
            } => {
                enqueued.insert((*tx, *attempt));
            }
            ProtoEvent::TxAbort {
                tx,
                attempt,
                cause,
                nested_parent,
                ..
            } => {
                spans.aborts += 1;
                spans.nested_parent += nested_parent;
                if *cause == hyflow_dstm::AbortCause::QueueTimeout {
                    report.timeout_aborts_checked += 1;
                    if !enqueued.contains(&(*tx, *attempt)) {
                        report.violations.push(format!(
                            "queue-timeout abort of {tx} (attempt {attempt}) at t={} has \
                             no preceding enqueue decision",
                            r.at.0
                        ));
                    }
                }
            }
            ProtoEvent::NestedCommit { .. } => spans.nested_commits += 1,
            ProtoEvent::NestedAbort { own, parent, .. } => {
                spans.nested_own += own;
                spans.nested_parent += parent;
            }
            ProtoEvent::RunSummary {
                commits,
                aborts,
                nested_own,
                nested_parent,
                nested_commits,
            } => {
                report.summary_checked = true;
                let pairs = [
                    ("commits", spans.commits, *commits),
                    ("aborts", spans.aborts, *aborts),
                    ("nested-own aborts", spans.nested_own, *nested_own),
                    ("nested-parent aborts", spans.nested_parent, *nested_parent),
                    ("nested commits", spans.nested_commits, *nested_commits),
                ];
                for (label, from_spans, from_counters) in pairs {
                    if from_spans != from_counters {
                        report.violations.push(format!(
                            "Table-I cross-check failed for {label}: {from_spans} \
                             recomputed from spans vs {from_counters} from counters"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    report
}

/// Span-derived totals accumulated during replay (the numbers the
/// counter-based `RunSummary` must match exactly).
#[derive(Default)]
struct SpanTotals {
    commits: u64,
    aborts: u64,
    nested_own: u64,
    nested_parent: u64,
    nested_commits: u64,
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push_str("\n  ");
    out.push_str(body);
}

/// Render the log as Chrome `trace_event` JSON (the "JSON array format"
/// wrapped in an object). pid = node, tid = transaction sequence number on
/// its origin node; each attempt is an `X` complete event and nested child
/// levels stack beneath it; scheduler decisions, queue service, forwarding
/// and migration are instants on the node that observed them.
pub fn to_chrome_trace(log: &TraceLog) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;

    // Process metadata: one "process" per node.
    let mut nodes: Vec<u32> = log.records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ),
        );
    }

    // Open attempt spans and nested-child stacks per transaction.
    let mut open_attempt: HashMap<TxId, (u64, u32)> = HashMap::new();
    let mut open_children: HashMap<TxId, Vec<(u32, u64)>> = HashMap::new();
    let end_of_log = log.records.last().map_or(0, |r| r.at.0);

    let close_children = |out: &mut String,
                          first: &mut bool,
                          tx: TxId,
                          down_to: u32,
                          at: u64,
                          stacks: &mut HashMap<TxId, Vec<(u32, u64)>>| {
        if let Some(stack) = stacks.get_mut(&tx) {
            while stack.last().is_some_and(|&(lvl, _)| lvl >= down_to) {
                let (lvl, started) = stack.pop().expect("checked");
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"name\":\"child L{lvl}\",\"cat\":\"nested\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                    ),
                );
            }
        }
    };

    for r in &log.records {
        let at = r.at.0;
        match &r.ev {
            ProtoEvent::TxStart { tx, attempt, .. } => {
                open_attempt.insert(*tx, (at, *attempt));
            }
            ProtoEvent::TxCommit { tx, attempt, .. } => {
                close_children(&mut out, &mut first, *tx, 1, at, &mut open_children);
                let (started, a) = open_attempt.remove(tx).unwrap_or((at, *attempt));
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{tx}#a{a} commit\",\"cat\":\"tx\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"args\":{{\"outcome\":\"commit\"}}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                    ),
                );
            }
            ProtoEvent::TxAbort {
                tx, attempt, cause, ..
            } => {
                close_children(&mut out, &mut first, *tx, 1, at, &mut open_children);
                let (started, a) = open_attempt.remove(tx).unwrap_or((at, *attempt));
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{tx}#a{a} abort\",\"cat\":\"tx\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
                         \"args\":{{\"outcome\":\"abort\",\"cause\":\"{}\"}}}}",
                        tx.node,
                        tx.seq,
                        ts_us(started),
                        ts_us(at.saturating_sub(started)),
                        cause.label(),
                    ),
                );
            }
            ProtoEvent::NestedOpen { tx, level, .. } => {
                open_children.entry(*tx).or_default().push((*level, at));
            }
            ProtoEvent::NestedCommit { tx, level, .. }
            | ProtoEvent::NestedAbort { tx, level, .. } => {
                close_children(&mut out, &mut first, *tx, *level, at, &mut open_children);
            }
            ProtoEvent::TxForward { tx, oid, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"forward {oid}\",\"cat\":\"tfa\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                        tx.node,
                        tx.seq,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::SchedDecision {
                oid, tx, verdict, ..
            } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{} {oid} for {tx}\",\"cat\":\"sched\",\"ph\":\"i\",\
                         \"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{:.3}}}",
                        verdict.label(),
                        r.node,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::QueueServed { oid, tx, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"serve {oid} to {tx}\",\"cat\":\"sched\",\"ph\":\"i\",\
                         \"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{:.3}}}",
                        r.node,
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::Migrate { oid, from, to, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"migrate {oid}: {from}->{to}\",\"cat\":\"cc\",\
                         \"ph\":\"i\",\"s\":\"g\",\"pid\":{to},\"tid\":0,\"ts\":{:.3}}}",
                        ts_us(at),
                    ),
                );
            }
            ProtoEvent::RunSummary { .. } => {}
        }
    }

    // Close anything still open at the end of the log (stalled or
    // budget-cut transactions).
    let open: Vec<TxId> = open_children.keys().copied().collect();
    for tx in open {
        close_children(&mut out, &mut first, tx, 1, end_of_log, &mut open_children);
    }
    for (tx, (started, a)) in open_attempt {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{tx}#a{a} unfinished\",\"cat\":\"tx\",\"ph\":\"X\",\
                 \"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                tx.node,
                tx.seq,
                ts_us(started),
                ts_us(end_of_log.saturating_sub(started)),
            ),
        );
    }

    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// A quick census of the log: record counts per kind plus outcome totals.
pub fn trace_stats(log: &TraceLog) -> String {
    let mut by_kind: HashMap<&'static str, u64> = HashMap::new();
    let (mut commits, mut aborts) = (0u64, 0u64);
    let (mut enq, mut timeouts) = (0u64, 0u64);
    for r in &log.records {
        let kind = match &r.ev {
            ProtoEvent::TxStart { .. } => "tx_start",
            ProtoEvent::TxForward { .. } => "tx_forward",
            ProtoEvent::TxCommit { .. } => {
                commits += 1;
                "tx_commit"
            }
            ProtoEvent::TxAbort { cause, .. } => {
                aborts += 1;
                if *cause == hyflow_dstm::AbortCause::QueueTimeout {
                    timeouts += 1;
                }
                "tx_abort"
            }
            ProtoEvent::NestedOpen { .. } => "nested_open",
            ProtoEvent::NestedCommit { .. } => "nested_commit",
            ProtoEvent::NestedAbort { .. } => "nested_abort",
            ProtoEvent::SchedDecision { verdict, .. } => {
                if *verdict == Verdict::Enqueue {
                    enq += 1;
                }
                "sched_decision"
            }
            ProtoEvent::QueueServed { .. } => "queue_served",
            ProtoEvent::Migrate { .. } => "migrate",
            ProtoEvent::RunSummary { .. } => "run_summary",
        };
        *by_kind.entry(kind).or_default() += 1;
    }
    let mut kinds: Vec<(&str, u64)> = by_kind.into_iter().collect();
    kinds.sort();
    let mut out = format!("{} records\n", log.records.len());
    for (k, c) in kinds {
        let _ = writeln!(out, "  {k:<16} {c}");
    }
    let _ = writeln!(
        out,
        "commits {commits}, aborts {aborts} ({timeouts} queue timeouts), enqueues {enq}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstm_sim::{SimDuration, SimTime};
    use hyflow_dstm::{AbortCause, TraceRecord};
    use rts_core::TxKind;

    fn rec(at: u64, node: u32, ev: ProtoEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime(at),
            node,
            ev,
        }
    }

    fn commit(
        at: u64,
        tx: TxId,
        reads: Vec<(ObjectId, u64)>,
        writes: Vec<(ObjectId, u64, u64)>,
    ) -> TraceRecord {
        rec(
            at,
            tx.node,
            ProtoEvent::TxCommit {
                tx,
                attempt: 0,
                nested_committed: 0,
                reads,
                writes,
            },
        )
    }

    #[test]
    fn clean_history_passes() {
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(1, 1);
        let o = ObjectId(1);
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![(o, 0)], vec![(o, 0, 1)]),
                commit(200, t2, vec![(o, 1)], vec![(o, 1, 2)]),
            ],
        };
        let report = audit(&log);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.commits_checked, 2);
    }

    #[test]
    fn lost_update_is_flagged() {
        let t1 = TxId::new(0, 1);
        let t2 = TxId::new(1, 1);
        let o = ObjectId(1);
        // Both commits were built against version 0: the second one
        // overwrites the first's update.
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![(o, 0)], vec![(o, 0, 1)]),
                commit(200, t2, vec![(o, 0)], vec![(o, 0, 2)]),
            ],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(report.violations[0].contains("lost update"), "{report:?}");
    }

    #[test]
    fn inconsistent_read_footprint_is_flagged() {
        let (t1, t2, t3) = (TxId::new(0, 1), TxId::new(1, 1), TxId::new(2, 1));
        let (a, b) = (ObjectId(1), ObjectId(2));
        // a@1 dies at t=200 (a@2 installed); b@5 is born at t=300. A commit
        // reading {a@1, b@5} observed two states that never coexisted.
        let log = TraceLog {
            records: vec![
                commit(100, t1, vec![], vec![(a, 0, 1)]),
                commit(200, t1, vec![], vec![(a, 1, 2)]),
                commit(300, t2, vec![], vec![(b, 0, 5)]),
                commit(400, t3, vec![(a, 1), (b, 5)], vec![]),
            ],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("inconsistent read footprint"),
            "{report:?}"
        );
    }

    #[test]
    fn timeout_without_enqueue_is_flagged() {
        let tx = TxId::new(1, 1);
        let log = TraceLog {
            records: vec![rec(
                500,
                1,
                ProtoEvent::TxAbort {
                    tx,
                    attempt: 0,
                    cause: AbortCause::QueueTimeout,
                    nested_parent: 0,
                    backoff: SimDuration::ZERO,
                },
            )],
        };
        let report = audit(&log);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("no preceding enqueue"),
            "{report:?}"
        );
    }

    #[test]
    fn paired_timeout_passes() {
        let tx = TxId::new(1, 1);
        let o = ObjectId(1);
        let log = TraceLog {
            records: vec![
                rec(
                    100,
                    0,
                    ProtoEvent::SchedDecision {
                        oid: o,
                        tx,
                        attempt: 0,
                        local_cl: 1,
                        requester_cl: 0,
                        window_requests: 1,
                        executed: SimDuration::from_millis(10),
                        remaining: SimDuration::from_millis(5),
                        queue_depth: 1,
                        bk: SimDuration::from_millis(5),
                        threshold: Some(16),
                        verdict: Verdict::Enqueue,
                        backoff: SimDuration::from_millis(5),
                    },
                ),
                rec(
                    900,
                    1,
                    ProtoEvent::TxAbort {
                        tx,
                        attempt: 0,
                        cause: AbortCause::QueueTimeout,
                        nested_parent: 0,
                        backoff: SimDuration::ZERO,
                    },
                ),
            ],
        };
        let report = audit(&log);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.timeout_aborts_checked, 1);
    }

    #[test]
    fn summary_mismatch_is_flagged() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                commit(100, tx, vec![], vec![]),
                rec(
                    200,
                    0,
                    ProtoEvent::RunSummary {
                        commits: 2, // spans saw 1
                        aborts: 0,
                        nested_own: 0,
                        nested_parent: 0,
                        nested_commits: 0,
                    },
                ),
            ],
        };
        let report = audit(&log);
        assert!(report.summary_checked);
        assert!(!report.ok());
        assert!(
            report.violations[0].contains("Table-I cross-check failed"),
            "{report:?}"
        );
    }

    #[test]
    fn chrome_export_produces_valid_shape() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::TxStart {
                        tx,
                        kind: TxKind(1),
                        attempt: 0,
                    },
                ),
                rec(
                    1_000,
                    0,
                    ProtoEvent::NestedOpen {
                        tx,
                        attempt: 0,
                        level: 1,
                        kind: TxKind(2),
                    },
                ),
                rec(
                    2_000,
                    0,
                    ProtoEvent::NestedCommit {
                        tx,
                        attempt: 0,
                        level: 1,
                    },
                ),
                commit(3_000, tx, vec![(ObjectId(1), 0)], vec![(ObjectId(1), 0, 1)]),
            ],
        };
        let chrome = to_chrome_trace(&log);
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\":\"M\""), "process metadata present");
        assert!(chrome.contains("child L1"), "nested span present");
        assert!(chrome.contains("commit"), "attempt span present");
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance =
            |open: char, close: char| chrome.matches(open).count() == chrome.matches(close).count();
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn stats_census_counts_kinds() {
        let tx = TxId::new(0, 1);
        let log = TraceLog {
            records: vec![
                rec(
                    0,
                    0,
                    ProtoEvent::TxStart {
                        tx,
                        kind: TxKind(1),
                        attempt: 0,
                    },
                ),
                commit(1_000, tx, vec![], vec![]),
            ],
        };
        let s = trace_stats(&log);
        assert!(s.contains("2 records"));
        assert!(s.contains("tx_start"));
        assert!(s.contains("commits 1"));
    }
}
