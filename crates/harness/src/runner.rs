//! Simulation-cell runner.
//!
//! One **cell** = one complete deterministic simulation (benchmark ×
//! scheduler × node count × contention level × seed). Cells are independent,
//! so a sweep fans out over a scoped worker pool and merges results in
//! input order.

use dstm_benchmarks::{Benchmark, WorkloadParams};
use dstm_net::Topology;
use dstm_sim::{CalendarQueue, EventQueue, ShardRunStats, SimRng};
use hyflow_dstm::{
    DstmConfig, NodeEvent, PartitionStrategy, QueueBackend, RunMetrics, System, SystemBuilder,
    TraceLog,
};
use rts_core::SchedulerKind;

/// How a cell builds its network topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// The paper's setup: a dense matrix of sequentially drawn uniform
    /// delays. O(n²) memory; byte-identical to every historical run.
    UniformRandom { min_ms: u64, max_ms: u64 },
    /// Hash-derived uniform delays computed on demand: O(1) memory, for
    /// `--scale large` sweeps past the paper's 80 nodes.
    HashedRandom { min_ms: u64, max_ms: u64 },
}

impl TopologySpec {
    pub fn label(&self) -> &'static str {
        match self {
            TopologySpec::UniformRandom { .. } => "uniform",
            TopologySpec::HashedRandom { .. } => "hashed",
        }
    }
}

/// One point of an experiment sweep.
#[derive(Clone, Debug)]
pub struct Cell {
    pub benchmark: Benchmark,
    pub scheduler: SchedulerKind,
    pub params: WorkloadParams,
    pub dstm: DstmConfig,
    /// Simulation seed (topology + event jitter); the workload seed lives in
    /// `params.seed`.
    pub sim_seed: u64,
    /// Network model (defaults to the paper's 1–50 ms uniform matrix).
    pub topology: TopologySpec,
    /// Shards for the conservative time-windowed parallel executor; 1 runs
    /// the classic serial loop. Results are bit-identical either way — this
    /// is purely a host wall-clock knob. `Cell::new` seeds it from the
    /// `DSTM_SHARDS` environment variable (like `DSTM_WORKERS` for the cell
    /// pool), so every sweep and bench target honors the override without
    /// plumbing; `with_shards` sets it explicitly.
    pub shards: usize,
    /// Node→shard assignment strategy for sharded runs (ignored at
    /// `shards == 1`). Bit-identical results either way; locality widens
    /// the conservative windows by keeping chatty nodes together. Seeded
    /// from `DSTM_PARTITION` (`round-robin`/`locality`) like `shards` is
    /// from `DSTM_SHARDS`; `with_partition` sets it explicitly.
    pub partition: PartitionStrategy,
}

/// `DSTM_SHARDS` default for new cells; 1 (serial) when unset or invalid.
fn env_shards() -> usize {
    std::env::var("DSTM_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// `DSTM_CACHE` default for new cells; off when unset or unrecognized.
/// Unlike `DSTM_SHARDS` this changes simulated results (fewer fetch round
/// trips), which is why it defaults off and the differential tests pin it.
fn env_cache() -> bool {
    matches!(
        std::env::var("DSTM_CACHE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// `DSTM_PARTITION` default for new cells; round-robin when unset or
/// unrecognized.
fn env_partition() -> PartitionStrategy {
    std::env::var("DSTM_PARTITION")
        .ok()
        .and_then(|s| PartitionStrategy::from_name(&s))
        .unwrap_or_default()
}

impl Cell {
    /// A cell with harness defaults for the given axes. RTS cells use the
    /// benchmark's peak tuning (§IV-A: threshold at the throughput peak).
    pub fn new(
        benchmark: Benchmark,
        scheduler: SchedulerKind,
        nodes: usize,
        read_ratio: f64,
    ) -> Self {
        let params = WorkloadParams {
            nodes,
            read_ratio,
            ..WorkloadParams::default()
        };
        let mut dstm = DstmConfig::default().with_scheduler(scheduler);
        let (threshold, slack) = benchmark.rts_tuning();
        dstm.cl_threshold = threshold;
        dstm.queue_deadline_percent = slack;
        dstm.cache = env_cache();
        Cell {
            benchmark,
            scheduler,
            params,
            dstm,
            sim_seed: 0xD57A,
            topology: TopologySpec::UniformRandom {
                min_ms: 1,
                max_ms: 50,
            },
            shards: env_shards(),
            partition: env_partition(),
        }
    }

    /// Run the simulation on `shards` threads (conservative time-windowed
    /// executor); clamped to ≥ 1. Bit-identical to the serial run.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Node→shard assignment strategy for sharded runs.
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Self {
        self.partition = partition;
        self
    }

    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    pub fn with_txns(mut self, txns: usize) -> Self {
        self.params.txns_per_node = txns;
        self
    }

    pub fn with_threshold(mut self, t: u32) -> Self {
        self.dstm.cl_threshold = t;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self.params.seed = seed.wrapping_mul(0x9E37_79B9);
        self
    }

    pub fn with_queue_backend(mut self, q: QueueBackend) -> Self {
        self.dstm.queue_backend = q;
        self
    }

    /// Record typed protocol events during the run (see `hyflow_dstm::trace`).
    pub fn with_trace(mut self) -> Self {
        self.dstm.trace_protocol = true;
        self
    }

    /// Enable the passive epoch sampler (see `hyflow_dstm::telemetry`):
    /// per-node time-resolved commit/abort/wasted-work series, off the hot
    /// path when disabled.
    pub fn with_telemetry(mut self) -> Self {
        self.dstm.telemetry = true;
        self
    }

    /// Sampling epoch for telemetry, in sim-time nanoseconds (default 50 ms).
    pub fn with_epoch_ns(mut self, epoch_ns: u64) -> Self {
        self.dstm.epoch = dstm_sim::SimDuration(epoch_ns);
        self
    }

    /// Clock-validated remote-read caching plus same-tick message
    /// coalescing (see `hyflow_dstm::config::DstmConfig::cache`). Changes
    /// simulated results — fewer fetch round trips — so it is an explicit
    /// protocol variant, not a host-side knob like `with_shards`.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.dstm.cache = cache;
        self
    }
}

/// Aggregate outcome of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub cell: Cell,
    pub metrics: RunMetrics,
    pub completed: bool,
    /// Host wall-clock for build + run of this cell, in nanoseconds
    /// (per-cell even when cells run on the worker pool).
    pub wall_ns: u64,
    /// Thread-CPU time for build + run of this cell, in nanoseconds. A
    /// serial cell runs entirely on one thread, so this is the
    /// preemption-immune cost — on shared/noisy hosts wall clock inflates
    /// under contention while this stays put. Benchmarks key ns/event off
    /// this. For sharded cells (`shards > 1`) this counts only the
    /// coordinating thread (which runs shard 0); cross-thread speedup claims
    /// must use `wall_ns`.
    pub cpu_ns: u64,
    /// Executor statistics for sharded cells (`None` for serial ones):
    /// per-shard event counts and per-shard barrier-wait nanoseconds, the
    /// attribution data behind the BENCH_kernel.json sharded rows.
    pub shard_stats: Option<ShardRunStats>,
}

/// Current thread's consumed CPU time in nanoseconds (Linux
/// `CLOCK_THREAD_CPUTIME_ID`; wall-clock fallback elsewhere). Differences
/// of two readings on the same thread time a computation without counting
/// time the thread spent preempted.
pub fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clk: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: clock_gettime only writes the timespec it is handed.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64;
        }
    }
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

impl CellResult {
    pub fn throughput(&self) -> f64 {
        self.metrics.throughput()
    }

    pub fn nested_abort_rate(&self) -> f64 {
        self.metrics.nested_abort_rate()
    }
}

/// Build the system for a cell on an explicit event-queue backend.
pub fn build_system_with_queue<Q: EventQueue<NodeEvent>>(cell: &Cell, queue: Q) -> System<Q> {
    // The paper's static network: 1–50 ms uniform delays (§IV-A), or the
    // O(1)-memory hashed equivalent for large-scale sweeps.
    let topo = match cell.topology {
        TopologySpec::UniformRandom { min_ms, max_ms } => {
            let mut rng = SimRng::new(cell.sim_seed);
            Topology::uniform_random(cell.params.nodes, min_ms, max_ms, &mut rng)
        }
        TopologySpec::HashedRandom { min_ms, max_ms } => {
            Topology::hashed_random(cell.params.nodes, min_ms, max_ms, cell.sim_seed)
        }
    };
    let mut dstm = cell.dstm.clone();
    dstm.scheduler = cell.scheduler;
    dstm.txns_per_node = cell.params.txns_per_node;
    let workload = cell.benchmark.generate(&cell.params);
    SystemBuilder::new(topo, dstm)
        .seed(cell.sim_seed ^ 0xA5A5_5A5A)
        .build_with_queue(workload, queue)
}

/// Build the system for a cell (shared by experiments and tests) on the
/// default binary-heap queue.
pub fn build_system(cell: &Cell) -> System {
    build_system_with_queue(cell, dstm_sim::BinaryHeapQueue::new())
}

fn finish_cell<Q: EventQueue<NodeEvent> + Default + Send>(
    cell: Cell,
    mut system: System<Q>,
) -> CellResult {
    let metrics = if cell.shards > 1 {
        system.run_sharded_default_with(cell.shards, cell.partition)
    } else {
        system.run_default()
    };
    CellResult {
        completed: system.all_done(),
        shard_stats: system.shard_stats().cloned(),
        cell,
        metrics,
        wall_ns: 0,
        cpu_ns: 0,
    }
}

/// Run a single cell to completion on the backend its config selects. The
/// backend changes host wall-clock only — metrics are bit-identical.
pub fn run_cell(cell: Cell) -> CellResult {
    let t0 = std::time::Instant::now();
    let c0 = thread_cpu_ns();
    let mut r = match cell.dstm.queue_backend {
        QueueBackend::BinaryHeap => {
            let system = build_system(&cell);
            finish_cell(cell, system)
        }
        QueueBackend::Calendar => {
            let system = build_system_with_queue(&cell, CalendarQueue::new());
            finish_cell(cell, system)
        }
    };
    r.cpu_ns = thread_cpu_ns() - c0;
    r.wall_ns = t0.elapsed().as_nanos() as u64;
    r
}

/// Run a cell with protocol tracing forced on and return the merged,
/// time-ordered trace next to the usual result. A `RunSummary` record with
/// the counter-based totals is appended so offline audits can cross-check
/// span-derived numbers (Table I) against the live counters.
pub fn run_cell_traced(mut cell: Cell) -> (CellResult, TraceLog) {
    cell.dstm.trace_protocol = true;

    fn go<Q: EventQueue<NodeEvent> + Default + Send>(
        cell: Cell,
        mut system: System<Q>,
    ) -> (CellResult, TraceLog) {
        let metrics = if cell.shards > 1 {
            system.run_sharded_default_with(cell.shards, cell.partition)
        } else {
            system.run_default()
        };
        let mut trace = system.take_trace();
        if let Some(label) = hyflow_dstm::SchedLabel::from_label(cell.scheduler.label()) {
            trace.push_run_info(label, cell.params.nodes as u64);
        }
        trace.push_summary(system.now(), &metrics.merged);
        let completed = system.all_done();
        (
            CellResult {
                completed,
                shard_stats: system.shard_stats().cloned(),
                cell,
                metrics,
                wall_ns: 0,
                cpu_ns: 0,
            },
            trace,
        )
    }

    let t0 = std::time::Instant::now();
    let c0 = thread_cpu_ns();
    let (mut r, trace) = match cell.dstm.queue_backend {
        QueueBackend::BinaryHeap => {
            let system = build_system(&cell);
            go(cell, system)
        }
        QueueBackend::Calendar => {
            let system = build_system_with_queue(&cell, CalendarQueue::new());
            go(cell, system)
        }
    };
    r.cpu_ns = thread_cpu_ns() - c0;
    r.wall_ns = t0.elapsed().as_nanos() as u64;
    (r, trace)
}

/// Run a cell with the epoch sampler forced on and return the per-node
/// telemetry reports next to the usual result. Telemetry is passive: the
/// metrics, traces, and final state are bit-identical to a run without it.
pub fn run_cell_telemetry(mut cell: Cell) -> (CellResult, Vec<hyflow_dstm::TelemetryReport>) {
    cell.dstm.telemetry = true;

    fn go<Q: EventQueue<NodeEvent> + Default + Send>(
        cell: Cell,
        mut system: System<Q>,
    ) -> (CellResult, Vec<hyflow_dstm::TelemetryReport>) {
        let metrics = if cell.shards > 1 {
            system.run_sharded_default_with(cell.shards, cell.partition)
        } else {
            system.run_default()
        };
        let reports = system.take_telemetry();
        let completed = system.all_done();
        (
            CellResult {
                completed,
                shard_stats: system.shard_stats().cloned(),
                cell,
                metrics,
                wall_ns: 0,
                cpu_ns: 0,
            },
            reports,
        )
    }

    let t0 = std::time::Instant::now();
    let c0 = thread_cpu_ns();
    let (mut r, reports) = match cell.dstm.queue_backend {
        QueueBackend::BinaryHeap => {
            let system = build_system(&cell);
            go(cell, system)
        }
        QueueBackend::Calendar => {
            let system = build_system_with_queue(&cell, CalendarQueue::new());
            go(cell, system)
        }
    };
    r.cpu_ns = thread_cpu_ns() - c0;
    r.wall_ns = t0.elapsed().as_nanos() as u64;
    (r, reports)
}

/// Run many cells on `workers` threads (defaults to the parallelism the OS
/// reports). Results come back in input order. A panicking cell aborts the
/// sweep with a clean panic naming that cell (see [`try_run_cells`]).
pub fn run_cells(cells: Vec<Cell>, workers: Option<usize>) -> Vec<CellResult> {
    match try_run_cells(cells, workers) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`run_cells`]: a cell that panics surfaces as a clean
/// `Err` naming the failing cell instead of unwinding through the pool —
/// every worker is caught individually, so one bad cell can neither poison
/// the shared claim index nor strand the collector.
pub fn try_run_cells(cells: Vec<Cell>, workers: Option<usize>) -> Result<Vec<CellResult>, String> {
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    pooled_map(
        &cells,
        workers,
        &|c| {
            format!(
                "{}/{}/n={} seed={:#x} shards={}",
                c.benchmark.label(),
                c.scheduler.label(),
                c.params.nodes,
                c.sim_seed,
                c.shards
            )
        },
        &|c| run_cell(c.clone()),
    )
}

/// Render a caught panic payload (the `&str`/`String` forms `panic!` and
/// `assert!` produce; anything else becomes a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Order-preserving parallel map over `tasks` on a claim-index worker pool,
/// with per-task panic isolation: each invocation of `run` is wrapped in
/// `catch_unwind`, so a panicking task is reported (`Err` naming it via
/// `describe`) rather than tearing down the pool mid-sweep. The first
/// failing task (by input order) wins; later results are discarded.
fn pooled_map<T: Sync, R: Send>(
    tasks: &[T],
    workers: usize,
    describe: &(dyn Fn(&T) -> String + Sync),
    run: &(dyn Fn(&T) -> R + Sync),
) -> Result<Vec<R>, String> {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.clamp(1, n);
    let mut slots: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();

    if workers == 1 {
        for (task, slot) in tasks.iter().zip(&mut slots) {
            *slot = Some(catch_unwind(AssertUnwindSafe(|| run(task))).map_err(panic_message));
        }
    } else {
        // Work-stealing by shared index: each worker claims the next
        // unclaimed task, runs it (caught), and sends `(index, result)`
        // back; the collector reorders.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Result<R, String>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(task) = tasks.get(idx) else { return };
                    let result = catch_unwind(AssertUnwindSafe(|| run(task)));
                    if res_tx.send((idx, result.map_err(panic_message))).is_err() {
                        return;
                    }
                });
            }
            drop(res_tx);
            while let Ok((idx, result)) = res_rx.recv() {
                slots[idx] = Some(result);
            }
        });
    }

    let mut out = Vec::with_capacity(n);
    for (task, slot) in tasks.iter().zip(slots) {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(msg)) => {
                return Err(format!("cell {} panicked: {msg}", describe(task)));
            }
            // Unreachable in practice: every claimed index sends exactly one
            // result and the channel outlives the workers.
            None => return Err(format!("cell {} produced no result", describe(task))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(benchmark: Benchmark, scheduler: SchedulerKind) -> Cell {
        let mut c = Cell::new(benchmark, scheduler, 4, 0.5).with_txns(4);
        c.params.objects_per_node = 4;
        c
    }

    #[test]
    fn single_cell_completes() {
        let r = run_cell(tiny(Benchmark::Bank, SchedulerKind::Rts));
        assert!(r.completed, "bank cell stalled");
        assert_eq!(r.metrics.merged.commits, 16);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn all_benchmarks_complete_under_all_schedulers() {
        for b in Benchmark::ALL {
            for s in [
                SchedulerKind::Tfa,
                SchedulerKind::TfaBackoff,
                SchedulerKind::Rts,
            ] {
                let r = run_cell(tiny(b, s));
                assert!(r.completed, "{} under {s:?} stalled", b.label());
                assert_eq!(
                    r.metrics.merged.commits,
                    16,
                    "{} under {s:?} lost transactions",
                    b.label()
                );
            }
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let a = run_cell(tiny(Benchmark::LinkedList, SchedulerKind::Rts));
        let b = run_cell(tiny(Benchmark::LinkedList, SchedulerKind::Rts));
        assert_eq!(a.metrics.merged.commits, b.metrics.merged.commits);
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.elapsed, b.metrics.elapsed);
    }

    #[test]
    fn queue_backend_does_not_change_results() {
        let base = tiny(Benchmark::Bank, SchedulerKind::Rts);
        let heap = run_cell(base.clone().with_queue_backend(QueueBackend::BinaryHeap));
        let cal = run_cell(base.with_queue_backend(QueueBackend::Calendar));
        assert!(heap.completed && cal.completed);
        assert_eq!(heap.metrics.merged.commits, cal.metrics.merged.commits);
        assert_eq!(
            heap.metrics.merged.total_aborts(),
            cal.metrics.merged.total_aborts()
        );
        assert_eq!(heap.metrics.messages, cal.metrics.messages);
        assert_eq!(heap.metrics.elapsed, cal.metrics.elapsed);
    }

    #[test]
    fn sharded_cells_match_serial_bit_for_bit() {
        let base = tiny(Benchmark::Bank, SchedulerKind::Rts);
        let serial = run_cell(base.clone());
        assert!(serial.completed);
        assert!(serial.shard_stats.is_none(), "serial cells record no stats");
        for partition in [PartitionStrategy::RoundRobin, PartitionStrategy::Locality] {
            for shards in [2, 4, 8] {
                let sharded = run_cell(base.clone().with_shards(shards).with_partition(partition));
                assert!(
                    sharded.completed,
                    "sharded({shards}, {partition:?}) stalled"
                );
                assert_eq!(serial.metrics.merged, sharded.metrics.merged);
                assert_eq!(serial.metrics.messages, sharded.metrics.messages);
                assert_eq!(serial.metrics.ended_at, sharded.metrics.ended_at);
                let stats = sharded.shard_stats.expect("sharded cells record stats");
                assert_eq!(stats.shard_events.iter().sum::<u64>(), stats.steps);
                assert_eq!(stats.barrier_wait_ns.len(), stats.shard_events.len());
            }
        }
    }

    #[test]
    fn pool_reports_panicking_task_cleanly() {
        let tasks: Vec<u32> = (0..8).collect();
        let describe = |t: &u32| format!("task{t}");

        // Multi-worker: the pool survives the panic, drains the remaining
        // claims, and names the failing task.
        let err = pooled_map(&tasks, 3, &describe, &|t| {
            if *t == 5 {
                panic!("boom {t}");
            }
            *t * 2
        })
        .unwrap_err();
        assert!(err.contains("task5"), "missing task name: {err}");
        assert!(err.contains("boom 5"), "missing panic message: {err}");

        // Single-worker path catches too.
        let err = pooled_map(&tasks, 1, &describe, &|t| {
            assert!(*t != 2, "assert failure in task");
            *t
        })
        .unwrap_err();
        assert!(err.contains("task2"), "{err}");

        // And the all-good path returns results in input order.
        let ok = pooled_map(&tasks, 3, &describe, &|t| *t * 2).unwrap();
        assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn pool_preserves_order() {
        let cells: Vec<Cell> = (0..6)
            .map(|i| tiny(Benchmark::Dht, SchedulerKind::Tfa).with_seed(i as u64 + 1))
            .collect();
        let seq: Vec<u64> = cells.iter().map(|c| c.sim_seed).collect();
        let results = run_cells(cells, Some(3));
        let got: Vec<u64> = results.iter().map(|r| r.cell.sim_seed).collect();
        assert_eq!(seq, got);
        assert!(results.iter().all(|r| r.completed));
    }
}
