//! One module per regenerated paper artifact. Every module exposes a
//! `run(...) -> ...` entry returning both structured results (asserted on by
//! tests and benches) and a rendered table matching the paper's layout.

pub mod analysis;
pub mod backoff;
pub mod ext_schedulers;
pub mod nesting;
pub mod scenarios;
pub mod speedup;
pub mod table1;
pub mod threshold;
pub mod throughput;

use rts_core::SchedulerKind;

/// The three schedulers compared throughout §IV.
pub const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
];

/// Shared sizing knobs for the figure/table regenerations. The paper's
/// full scale (80 nodes, 10 000 transactions) takes a while in one process;
/// the defaults reproduce the *shape* quickly, and benches can scale up.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Node counts for the x-axes of Figs. 4–5.
    pub node_counts: Vec<usize>,
    /// Node count for Table I (paper: 80).
    pub table1_nodes: usize,
    /// Transactions per node per cell.
    pub txns_per_node: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            node_counts: vec![10, 20, 40, 60, 80],
            table1_nodes: 80,
            txns_per_node: 15,
        }
    }
}

impl Scale {
    /// A configuration small enough for unit tests.
    pub fn smoke() -> Self {
        Scale {
            node_counts: vec![4, 8],
            table1_nodes: 8,
            txns_per_node: 6,
        }
    }

    /// A fast sanity-run configuration (a strict subset of the paper's
    /// node counts).
    pub fn quick() -> Self {
        Scale {
            node_counts: vec![10, 20, 40],
            table1_nodes: 20,
            txns_per_node: 10,
        }
    }

    /// Production-scale sweeps *past* the paper's 80-node ceiling, up to
    /// 10k nodes. These rows extend (never replace) the 10–80-node
    /// figures; they pair with the O(1)-memory hashed topology in the
    /// runner (a dense 10k-node delay matrix would be 10⁸ entries).
    pub fn large() -> Self {
        Scale {
            node_counts: vec![160, 1000, 10_000],
            table1_nodes: 160,
            txns_per_node: 10,
        }
    }

    /// Parse a scale name (`smoke`, `quick`, `full`, `large`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Scale::smoke()),
            "quick" => Some(Scale::quick()),
            "full" => Some(Scale::default()),
            "large" => Some(Scale::large()),
            _ => None,
        }
    }

    /// Scale selected by the `DSTM_SCALE` environment variable:
    /// `quick` (fast sanity run), `full` (the paper's 10–80 node sweep,
    /// default), `smoke`, or `large` (160–10k nodes, hashed topology).
    pub fn from_env() -> Self {
        std::env::var("DSTM_SCALE")
            .ok()
            .as_deref()
            .and_then(Scale::from_name)
            .unwrap_or_default()
    }
}
