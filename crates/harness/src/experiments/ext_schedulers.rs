//! Extension comparison: RTS against the related-work schedulers of §V
//! (ATS-style adaptive scheduling, Bi-interval-style queue-everything) on
//! top of the paper's three evaluated systems.

use super::Scale;
use crate::runner::{run_cells, Cell};
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;
use rts_core::SchedulerKind;

pub const EXT_SCHEDULERS: [SchedulerKind; 5] = [
    SchedulerKind::Rts,
    SchedulerKind::Tfa,
    SchedulerKind::TfaBackoff,
    SchedulerKind::Ats,
    SchedulerKind::BiInterval,
];

/// Throughput of every scheduler on one benchmark/contention.
#[derive(Clone, Debug)]
pub struct ExtRow {
    pub benchmark: Benchmark,
    pub read_ratio: f64,
    /// Parallel to [`EXT_SCHEDULERS`].
    pub throughput: Vec<f64>,
}

/// Run the five-way comparison.
pub fn run(scale: &Scale, benchmarks: &[Benchmark], workers: Option<usize>) -> Vec<ExtRow> {
    let nodes = *scale.node_counts.last().unwrap_or(&20).min(&20);
    let mut cells = Vec::new();
    for &b in benchmarks {
        for read_ratio in [0.9, 0.1] {
            for s in EXT_SCHEDULERS {
                cells.push(Cell::new(b, s, nodes, read_ratio).with_txns(scale.txns_per_node));
            }
        }
    }
    let results = run_cells(cells, workers);
    let mut rows = Vec::new();
    let mut idx = 0;
    for &b in benchmarks {
        for read_ratio in [0.9, 0.1] {
            let throughput = EXT_SCHEDULERS
                .iter()
                .map(|_| {
                    let t = results[idx].throughput();
                    idx += 1;
                    t
                })
                .collect();
            rows.push(ExtRow {
                benchmark: b,
                read_ratio,
                throughput,
            });
        }
    }
    rows
}

pub fn render(rows: &[ExtRow]) -> String {
    let mut header = vec!["Benchmark".to_string(), "Contention".to_string()];
    header.extend(EXT_SCHEDULERS.iter().map(|s| s.label().to_string()));
    let mut t = TextTable::new(header);
    for r in rows {
        let mut row = vec![
            r.benchmark.label().to_string(),
            if r.read_ratio > 0.5 { "low" } else { "high" }.to_string(),
        ];
        row.extend(r.throughput.iter().map(|y| format!("{y:.2}")));
        t.row(row);
    }
    format!(
        "Extension comparison — throughput (txns/s) of RTS vs the §V related-work schedulers\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_way_comparison_runs() {
        let rows = run(&Scale::smoke(), &[Benchmark::Dht], Some(1));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.throughput.len(), 5);
            assert!(r.throughput.iter().all(|y| *y > 0.0), "{r:?}");
        }
        assert!(render(&rows).contains("Bi-interval"));
    }
}
