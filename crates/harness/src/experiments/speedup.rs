//! Figure 6 — summary of throughput speedup.
//!
//! *"We computed the throughput speedup of RTS over TFA and TFA+Backoff —
//! i.e., the ratio of RTS's throughput to that of the respective
//! competitors. ... RTS improves throughput over D-STM without RTS by as
//! much as 1.53× ∼ 1.88× speedup in low and high contention,
//! respectively."* One bar group per benchmark; four bars: TFA(Low),
//! TFA+Backoff(Low), TFA(High), TFA+Backoff(High).

use super::throughput::ThroughputFigure;
use super::Scale;
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;

/// Speedups of RTS over a competitor, per benchmark.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    pub benchmark: Benchmark,
    pub vs_tfa_low: f64,
    pub vs_backoff_low: f64,
    pub vs_tfa_high: f64,
    pub vs_backoff_high: f64,
}

#[derive(Clone, Debug)]
pub struct SpeedupSummary {
    pub rows: Vec<SpeedupRow>,
}

impl SpeedupSummary {
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "TFA(Low)",
            "TFA+Backoff(Low)",
            "TFA(High)",
            "TFA+Backoff(High)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.label().to_string(),
                format!("{:.2}x", r.vs_tfa_low),
                format!("{:.2}x", r.vs_backoff_low),
                format!("{:.2}x", r.vs_tfa_high),
                format!("{:.2}x", r.vs_backoff_high),
            ]);
        }
        t.render()
    }

    /// Max speedup over any competitor/contention (the paper's headline
    /// 1.53–1.88×).
    pub fn max_speedup(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                [
                    r.vs_tfa_low,
                    r.vs_backoff_low,
                    r.vs_tfa_high,
                    r.vs_backoff_high,
                ]
            })
            .fold(0.0, f64::max)
    }

    pub fn min_speedup(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| {
                [
                    r.vs_tfa_low,
                    r.vs_backoff_low,
                    r.vs_tfa_high,
                    r.vs_backoff_high,
                ]
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Derive Fig. 6 from the two throughput figures (it is a summary of
/// Figs. 4–5, so reuse their runs rather than re-simulating).
pub fn from_throughput(low: &ThroughputFigure, high: &ThroughputFigure) -> SpeedupSummary {
    let ratio = |fig: &ThroughputFigure, b: Benchmark, denom_label: &str| -> f64 {
        let num = fig.mean(b, "RTS");
        let den = fig.mean(b, denom_label);
        if den <= 0.0 {
            0.0
        } else {
            num / den
        }
    };
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| SpeedupRow {
            benchmark: b,
            vs_tfa_low: ratio(low, b, "TFA"),
            vs_backoff_low: ratio(low, b, "TFA+Backoff"),
            vs_tfa_high: ratio(high, b, "TFA"),
            vs_backoff_high: ratio(high, b, "TFA+Backoff"),
        })
        .collect();
    SpeedupSummary { rows }
}

/// Convenience: run both contention levels then summarize.
pub fn run(
    scale: &Scale,
    workers: Option<usize>,
) -> (ThroughputFigure, ThroughputFigure, SpeedupSummary) {
    let low = super::throughput::run(scale, 0.9, workers);
    let high = super::throughput::run(scale, 0.1, workers);
    let summary = from_throughput(&low, &high);
    (low, high, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_summary() {
        let (_, _, s) = run(&Scale::smoke(), Some(1));
        assert_eq!(s.rows.len(), 6);
        assert!(s.max_speedup() > 0.0);
        assert!(s.min_speedup() > 0.0);
        let rendered = s.render();
        assert!(rendered.contains("TFA+Backoff(High)"));
    }
}
