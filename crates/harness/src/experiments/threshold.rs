//! CL-threshold ablation (§III-B / §IV-A).
//!
//! *"Under long execution time and large CL's threshold, Vacation and Bank
//! benchmarks suffer from high contention ... under long execution time and
//! short CL's threshold, the aborts of parent transactions increase. At a
//! certain point of the CL's threshold, we observe a peak point of
//! transactional throughput. Thus, in this experiment, the CL's threshold
//! corresponding to the peak point is determined."*
//!
//! This sweep regenerates that peak-finding procedure, and additionally
//! compares the fixed peak against the adaptive (hill-climbing) controller.

use super::Scale;
use crate::runner::{run_cells, Cell};
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;
use rts_core::SchedulerKind;

/// Result of a threshold sweep for one benchmark.
#[derive(Clone, Debug)]
pub struct ThresholdSweep {
    pub benchmark: Benchmark,
    /// (threshold, throughput)
    pub points: Vec<(u32, f64)>,
    /// Throughput with the adaptive controller.
    pub adaptive: f64,
}

impl ThresholdSweep {
    /// The threshold at peak throughput.
    pub fn peak(&self) -> (u32, f64) {
        self.points
            .iter()
            .copied()
            .fold(
                (0, f64::NEG_INFINITY),
                |best, p| {
                    if p.1 > best.1 {
                        p
                    } else {
                        best
                    }
                },
            )
    }
}

/// Sweep thresholds for the given benchmarks at high contention.
pub fn run(
    scale: &Scale,
    benchmarks: &[Benchmark],
    thresholds: &[u32],
    workers: Option<usize>,
) -> Vec<ThresholdSweep> {
    let nodes = *scale.node_counts.last().unwrap_or(&20).min(&20);
    let mut cells = Vec::new();
    for &b in benchmarks {
        for &t in thresholds {
            cells.push(
                Cell::new(b, SchedulerKind::Rts, nodes, 0.1)
                    .with_txns(scale.txns_per_node)
                    .with_threshold(t),
            );
        }
        // One adaptive cell per benchmark.
        let mut adaptive =
            Cell::new(b, SchedulerKind::Rts, nodes, 0.1).with_txns(scale.txns_per_node);
        adaptive.dstm.adaptive_threshold = true;
        cells.push(adaptive);
    }
    let results = run_cells(cells, workers);
    let stride = thresholds.len() + 1;
    benchmarks
        .iter()
        .enumerate()
        .map(|(i, &benchmark)| ThresholdSweep {
            benchmark,
            points: thresholds
                .iter()
                .enumerate()
                .map(|(j, &t)| (t, results[i * stride + j].throughput()))
                .collect(),
            adaptive: results[i * stride + thresholds.len()].throughput(),
        })
        .collect()
}

/// Render the sweeps side by side.
pub fn render(sweeps: &[ThresholdSweep]) -> String {
    let mut out = String::new();
    for s in sweeps {
        let mut t = TextTable::new(vec!["CL threshold", "throughput (txns/s)"]);
        for (th, y) in &s.points {
            t.row(vec![th.to_string(), format!("{y:.2}")]);
        }
        t.row(vec!["adaptive".to_string(), format!("{:.2}", s.adaptive)]);
        let (peak_t, peak_y) = s.peak();
        out.push_str(&format!(
            "{} (high contention) — peak at threshold {} ({:.2} txns/s)\n{}\n",
            s.benchmark.label(),
            peak_t,
            peak_y,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep() {
        let sweeps = run(&Scale::smoke(), &[Benchmark::Bank], &[1, 4], Some(1));
        assert_eq!(sweeps.len(), 1);
        assert_eq!(sweeps[0].points.len(), 2);
        assert!(sweeps[0].points.iter().all(|(_, y)| *y > 0.0));
        assert!(sweeps[0].adaptive > 0.0);
        let (peak, _) = sweeps[0].peak();
        assert!(peak == 1 || peak == 4);
        assert!(render(&sweeps).contains("peak at threshold"));
    }
}
