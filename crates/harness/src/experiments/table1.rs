//! Table I — abort rate of nested transactions.
//!
//! *"Table I shows the abort rate of nested transactions (i.e., nested
//! transaction aborts due to parent transaction's abort / total nested
//! transaction aborts) under ten thousand transactions and 80 nodes."*
//! RTS vs TFA, at low (90% reads) and high (10% reads) contention, for all
//! six benchmarks. The paper's observation: *"Under RTS, the abort rate of
//! nested transactions decreases approximately 60%."*

use super::Scale;
use crate::runner::{run_cells, Cell};
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;
use rts_core::SchedulerKind;

/// Paper-reported values (percent), for side-by-side comparison.
/// Rows follow `Benchmark::ALL`; columns: (low RTS, low TFA, high RTS, high TFA).
pub const PAPER_TABLE1: [(f64, f64, f64, f64); 6] = [
    (25.6, 55.5, 29.1, 67.5), // Vacation
    (21.5, 46.4, 23.3, 63.7), // Bank
    (14.4, 37.6, 17.9, 43.2), // Linked List
    (13.7, 32.2, 22.4, 45.1), // RB Tree
    (11.1, 29.4, 17.5, 37.4), // BST
    (12.8, 31.3, 19.9, 39.2), // DHT
];

/// One benchmark's measured row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub benchmark: Benchmark,
    pub low_rts: f64,
    pub low_tfa: f64,
    pub high_rts: f64,
    pub high_tfa: f64,
}

/// Full Table I result.
#[derive(Clone, Debug)]
pub struct Table1 {
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Render in the paper's layout (percentages).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Benchmark",
            "Low RTS",
            "Low TFA",
            "High RTS",
            "High TFA",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.benchmark.label().to_string(),
                format!("{:.1}%", 100.0 * r.low_rts),
                format!("{:.1}%", 100.0 * r.low_tfa),
                format!("{:.1}%", 100.0 * r.high_rts),
                format!("{:.1}%", 100.0 * r.high_tfa),
            ]);
        }
        t.render()
    }

    /// The paper's headline check: mean reduction of the nested-abort rate
    /// under RTS relative to TFA (paper: ≈60%).
    pub fn mean_reduction(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0.0;
        for r in &self.rows {
            if r.low_tfa > 0.0 {
                acc += 1.0 - r.low_rts / r.low_tfa;
                n += 1.0;
            }
            if r.high_tfa > 0.0 {
                acc += 1.0 - r.high_rts / r.high_tfa;
                n += 1.0;
            }
        }
        if n == 0.0 {
            0.0
        } else {
            acc / n
        }
    }
}

/// Regenerate Table I at the given scale.
pub fn run(scale: &Scale, workers: Option<usize>) -> Table1 {
    let mut cells = Vec::new();
    for b in Benchmark::ALL {
        for read_ratio in [0.9, 0.1] {
            for s in [SchedulerKind::Rts, SchedulerKind::Tfa] {
                cells.push(
                    Cell::new(b, s, scale.table1_nodes, read_ratio).with_txns(scale.txns_per_node),
                );
            }
        }
    }
    let results = run_cells(cells, workers);
    let rows = Benchmark::ALL
        .iter()
        .enumerate()
        .map(|(i, &benchmark)| {
            let base = i * 4;
            Table1Row {
                benchmark,
                low_rts: results[base].nested_abort_rate(),
                low_tfa: results[base + 1].nested_abort_rate(),
                high_rts: results[base + 2].nested_abort_rate(),
                high_tfa: results[base + 3].nested_abort_rate(),
            }
        })
        .collect();
    Table1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_all_rows() {
        let t = run(&Scale::smoke(), Some(1));
        assert_eq!(t.rows.len(), 6);
        let rendered = t.render();
        for b in Benchmark::ALL {
            assert!(rendered.contains(b.label()));
        }
        for r in &t.rows {
            for v in [r.low_rts, r.low_tfa, r.high_rts, r.high_tfa] {
                assert!((0.0..=1.0).contains(&v), "rate {v} out of range");
            }
        }
    }

    #[test]
    fn paper_constants_shape() {
        // Sanity of the embedded paper numbers: RTS < TFA everywhere, and
        // high contention >= low contention per scheduler.
        for (lr, lt, hr, ht) in PAPER_TABLE1 {
            assert!(lr < lt && hr < ht);
            assert!(hr >= lr && ht >= lt - 0.1);
        }
    }
}
