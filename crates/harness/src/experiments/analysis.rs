//! §III-D makespan analysis — bounds vs simulation.
//!
//! Regenerates the analysis as a table: for each `N`, the Lemma 3.2 bound
//! for scheduler B (abort-and-retry), the Lemma 3.3 bound for RTS (object
//! handed down the queue), the relative competitive ratio of the bounds
//! (Theorem 3.4: `< 1` for `N ≥ 3`), and the *measured* makespans of the
//! worst-case workload — `N` transactions on `N` nodes all updating one
//! shared object — under TFA and RTS.

use crate::table::TextTable;
use dstm_net::Topology;
use dstm_sim::{ActorId, SimDuration, SimRng};
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{BoxedProgram, DstmConfig, Payload, SystemBuilder, WorkloadSource};
use rts_core::analysis::{makespan_b_bound, makespan_rts_bound, rcr_bound, theorem_3_4_holds};
use rts_core::{ObjectId, SchedulerKind, TxKind};

/// One row: analysis + measurement at node count `n`.
#[derive(Clone, Debug)]
pub struct AnalysisRow {
    pub n: usize,
    pub bound_b_ms: f64,
    pub bound_rts_ms: f64,
    pub rcr_bound: f64,
    pub theorem_holds: bool,
    pub sim_tfa_ms: f64,
    pub sim_rts_ms: f64,
    pub rcr_sim: f64,
}

/// Local execution time per transaction in the worst-case workload.
const GAMMA: SimDuration = SimDuration::from_millis(2);

fn worst_case_makespan(topo: &Topology, oid: ObjectId, scheduler: SchedulerKind) -> f64 {
    let n = topo.n();
    let cfg = DstmConfig {
        scheduler,
        concurrency_per_node: 1,
        txns_per_node: 1,
        ..DstmConfig::default()
    };
    let programs: Vec<Vec<BoxedProgram>> = (0..n)
        .map(|i| {
            if i == 0 {
                // The object's home runs nothing; it only serves.
                Vec::new()
            } else {
                vec![Box::new(ScriptProgram::new(
                    TxKind(1),
                    vec![
                        ScriptOp::Write(oid),
                        ScriptOp::AddScalar(oid, 1),
                        ScriptOp::Compute(GAMMA),
                    ],
                )) as BoxedProgram]
            }
        })
        .collect();
    let mut system = SystemBuilder::new(topo.clone(), cfg)
        .seed(13)
        .build(WorkloadSource {
            objects: vec![(oid, Payload::Scalar(0))],
            programs,
        });
    let metrics = system.run(20_000_000);
    assert!(system.all_done(), "worst-case workload stalled at n={n}");
    assert_eq!(metrics.merged.commits as usize, n - 1, "lost commits");
    metrics.elapsed.as_nanos() as f64 / 1e6
}

/// Run the analysis experiment over the given node counts.
pub fn run(node_counts: &[usize]) -> Vec<AnalysisRow> {
    let mut rows = Vec::new();
    for &n in node_counts {
        let mut rng = SimRng::new(42);
        let topo = Topology::metric_plane(n, 40.0, 1, &mut rng);
        let home = ActorId(0);
        let gammas = vec![GAMMA; n];
        let order = topo.nearest_neighbour_tour(home);
        let oid = super::scenarios::oid_homed_at(0, n);
        let sim_tfa_ms = worst_case_makespan(&topo, oid, SchedulerKind::Tfa);
        let sim_rts_ms = worst_case_makespan(&topo, oid, SchedulerKind::Rts);
        rows.push(AnalysisRow {
            n,
            bound_b_ms: makespan_b_bound(&topo, home, &gammas) as f64 / 1e6,
            bound_rts_ms: makespan_rts_bound(&topo, home, &order, &gammas) as f64 / 1e6,
            rcr_bound: rcr_bound(&topo, home, &gammas),
            theorem_holds: theorem_3_4_holds(&topo, home, &gammas),
            sim_tfa_ms,
            sim_rts_ms,
            rcr_sim: if sim_tfa_ms > 0.0 {
                sim_rts_ms / sim_tfa_ms
            } else {
                0.0
            },
        });
    }
    rows
}

pub fn render(rows: &[AnalysisRow]) -> String {
    let mut t = TextTable::new(vec![
        "N",
        "bound B (ms)",
        "bound RTS (ms)",
        "RCR bound",
        "Thm 3.4",
        "sim TFA (ms)",
        "sim RTS (ms)",
        "RCR sim",
    ]);
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            format!("{:.1}", r.bound_b_ms),
            format!("{:.1}", r.bound_rts_ms),
            format!("{:.3}", r.rcr_bound),
            if r.theorem_holds { "holds" } else { "VIOLATED" }.to_string(),
            format!("{:.1}", r.sim_tfa_ms),
            format!("{:.1}", r.sim_rts_ms),
            format!("{:.3}", r.rcr_sim),
        ]);
    }
    format!(
        "Makespan analysis (Lemmas 3.2–3.3, Theorem 3.4) vs worst-case simulation\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_rows_and_theorem() {
        let rows = run(&[4, 8]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.theorem_holds, "theorem violated at n={}", r.n);
            assert!(r.bound_rts_ms < r.bound_b_ms);
            assert!(r.sim_tfa_ms > 0.0 && r.sim_rts_ms > 0.0);
            // The bounds are worst-case: the simulation must come in under
            // the *B* bound under either scheduler.
            assert!(
                r.sim_tfa_ms <= r.bound_b_ms * 1.5,
                "TFA sim far above bound"
            );
        }
        assert!(render(&rows).contains("Thm 3.4"));
    }
}
