//! Nesting-model ablation: closed vs flat nesting (§I's motivation).
//!
//! *"Flat nesting results in large monolithic transactions, which limits
//! concurrency: when a large monolithic transaction is aborted, all nested
//! transactions are also aborted and rolled back, even if they don't
//! conflict with the outer transaction."* Closed nesting lets a child
//! abort and replay alone. This sweep measures the throughput cost of
//! flattening under each scheduler.

use super::Scale;
use crate::runner::{run_cells, Cell};
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;
use hyflow_dstm::NestingMode;
use rts_core::SchedulerKind;

/// One (benchmark, scheduler) comparison.
#[derive(Clone, Debug)]
pub struct NestingRow {
    pub benchmark: Benchmark,
    pub scheduler: SchedulerKind,
    pub closed_tput: f64,
    pub flat_tput: f64,
}

impl NestingRow {
    /// Throughput advantage of closed over flat nesting.
    pub fn closed_advantage(&self) -> f64 {
        if self.flat_tput <= 0.0 {
            0.0
        } else {
            self.closed_tput / self.flat_tput
        }
    }
}

/// Compare nesting models at high contention.
pub fn run(scale: &Scale, benchmarks: &[Benchmark], workers: Option<usize>) -> Vec<NestingRow> {
    let nodes = *scale.node_counts.last().unwrap_or(&20).min(&20);
    let mut cells = Vec::new();
    for &b in benchmarks {
        for s in [SchedulerKind::Rts, SchedulerKind::Tfa] {
            for mode in [NestingMode::Closed, NestingMode::Flat] {
                let mut c = Cell::new(b, s, nodes, 0.1).with_txns(scale.txns_per_node);
                c.dstm.nesting = mode;
                cells.push(c);
            }
        }
    }
    let results = run_cells(cells, workers);
    let mut rows = Vec::new();
    let mut idx = 0;
    for &b in benchmarks {
        for s in [SchedulerKind::Rts, SchedulerKind::Tfa] {
            let closed = results[idx].throughput();
            let flat = results[idx + 1].throughput();
            idx += 2;
            rows.push(NestingRow {
                benchmark: b,
                scheduler: s,
                closed_tput: closed,
                flat_tput: flat,
            });
        }
    }
    rows
}

pub fn render(rows: &[NestingRow]) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Scheduler",
        "Closed (tx/s)",
        "Flat (tx/s)",
        "Closed advantage",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.label().to_string(),
            r.scheduler.label().to_string(),
            format!("{:.2}", r.closed_tput),
            format!("{:.2}", r.flat_tput),
            format!("{:.2}x", r.closed_advantage()),
        ]);
    }
    format!(
        "Nesting-model ablation (high contention): closed vs flat nesting\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_nesting_ablation() {
        let rows = run(&Scale::smoke(), &[Benchmark::Bank], Some(1));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.closed_tput > 0.0 && r.flat_tput > 0.0);
        }
        assert!(render(&rows).contains("Closed advantage"));
    }
}
