//! Backoff ablations (DESIGN.md AB2).
//!
//! Two design choices the paper leaves implicit are swept here:
//!
//! 1. the **queue-deadline slack** RTS applies to the assigned backoff
//!    (§IV-B notes *"anticipating an exact execution time is too
//!    optimistic; an assigned backoff time may expire before the
//!    transaction can obtain an object"* — slack trades queue-timeout
//!    aborts against dead waiting time);
//! 2. the **base backoff** of the TFA+Backoff baseline (how generous the
//!    competitor is tuned).

use super::Scale;
use crate::runner::{run_cells, Cell};
use crate::table::TextTable;
use dstm_benchmarks::Benchmark;
use dstm_sim::SimDuration;
use rts_core::SchedulerKind;

/// Results of both ablations.
#[derive(Clone, Debug)]
pub struct BackoffAblation {
    /// (slack percent, throughput, queue-timeout aborts).
    pub slack: Vec<(u64, f64, u64)>,
    /// (backoff base ms, TFA+Backoff throughput).
    pub base: Vec<(u64, f64)>,
}

/// Sweep on Bank at high contention.
pub fn run(scale: &Scale, workers: Option<usize>) -> BackoffAblation {
    let nodes = *scale.node_counts.last().unwrap_or(&20).min(&20);
    let slack_percents = [100u64, 150, 200, 300];
    let bases_ms = [5u64, 10, 20, 40];

    let mut cells = Vec::new();
    for &pc in &slack_percents {
        let mut c = Cell::new(Benchmark::Bank, SchedulerKind::Rts, nodes, 0.1)
            .with_txns(scale.txns_per_node);
        c.dstm.queue_deadline_percent = pc;
        cells.push(c);
    }
    for &ms in &bases_ms {
        let mut c = Cell::new(Benchmark::Bank, SchedulerKind::TfaBackoff, nodes, 0.1)
            .with_txns(scale.txns_per_node);
        c.dstm.backoff_base = SimDuration::from_millis(ms);
        cells.push(c);
    }
    let results = run_cells(cells, workers);

    let slack = slack_percents
        .iter()
        .enumerate()
        .map(|(i, &pc)| {
            let r = &results[i];
            (pc, r.throughput(), r.metrics.merged.aborts_queue_timeout)
        })
        .collect();
    let base = bases_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| (ms, results[slack_percents.len() + i].throughput()))
        .collect();
    BackoffAblation { slack, base }
}

pub fn render(a: &BackoffAblation) -> String {
    let mut t1 = TextTable::new(vec!["deadline slack %", "throughput", "queue timeouts"]);
    for (pc, y, to) in &a.slack {
        t1.row(vec![pc.to_string(), format!("{y:.2}"), to.to_string()]);
    }
    let mut t2 = TextTable::new(vec!["TFA+Backoff base (ms)", "throughput"]);
    for (ms, y) in &a.base {
        t2.row(vec![ms.to_string(), format!("{y:.2}")]);
    }
    format!(
        "RTS queue-deadline slack (Bank, high contention)\n{}\nTFA+Backoff base backoff (Bank, high contention)\n{}",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablation() {
        let a = run(&Scale::smoke(), Some(1));
        assert_eq!(a.slack.len(), 4);
        assert_eq!(a.base.len(), 4);
        assert!(a.slack.iter().all(|(_, y, _)| *y > 0.0));
        assert!(a.base.iter().all(|(_, y)| *y > 0.0));
        assert!(render(&a).contains("deadline slack"));
    }
}
