//! Scripted reproductions of the paper's illustrative figures.
//!
//! * **Fig. 2** — the TFA abort anatomy: six write transactions race for
//!   one object; the first committer's validation makes earlier requesters
//!   fail their own validation (abort kind 1) and makes concurrent
//!   requesters hit the locked object (abort kind 2).
//! * **Fig. 3** — the RTS scheduling scenario: under the same collision
//!   pattern, conflicting parents are enqueued (kept live) and receive the
//!   object on release; read requesters are served simultaneously.

use dstm_benchmarks::WorkloadParams;
use dstm_net::Topology;
use dstm_sim::SimDuration;
use hyflow_dstm::program::{ScriptOp, ScriptProgram};
use hyflow_dstm::{
    BoxedProgram, DstmConfig, Payload, RunMetrics, SystemBuilder, TraceLog, WorkloadSource,
};
use rts_core::{ObjectId, SchedulerKind, TxKind};

/// Find an object id homed at `node` for an `n`-node system.
pub fn oid_homed_at(node: u32, n: usize) -> ObjectId {
    (1..)
        .map(ObjectId)
        .find(|o| o.home(n) == node)
        .expect("some id hashes to every node")
}

/// Outcome of a scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub metrics: RunMetrics,
    pub final_value: i64,
    pub all_done: bool,
}

/// Run the Fig. 2/3 collision pattern under `scheduler`:
/// `writers` write transactions (and `readers` read transactions) on one
/// object homed at node 0, with staggered starts so that later requests
/// land inside the first committer's validation window.
pub fn run_collision(scheduler: SchedulerKind, writers: usize, readers: usize) -> ScenarioResult {
    run_collision_inner(scheduler, writers, readers, false).0
}

/// [`run_collision`] with protocol tracing on; the returned [`TraceLog`]
/// carries every lifecycle span and scheduler decision of the scenario,
/// terminated by a `RunSummary` record for offline counter cross-checks.
pub fn run_collision_traced(
    scheduler: SchedulerKind,
    writers: usize,
    readers: usize,
) -> (ScenarioResult, TraceLog) {
    let (result, trace) = run_collision_inner(scheduler, writers, readers, true);
    (result, trace.expect("tracing was requested"))
}

fn run_collision_inner(
    scheduler: SchedulerKind,
    writers: usize,
    readers: usize,
    trace: bool,
) -> (ScenarioResult, Option<TraceLog>) {
    let n = 1 + writers + readers;
    let topo = Topology::complete(n, 10);
    let oid = oid_homed_at(0, n);
    let cfg = DstmConfig {
        scheduler,
        concurrency_per_node: 1,
        txns_per_node: 1,
        trace_protocol: trace,
        ..DstmConfig::default()
    };

    // Each writer first commits a nested child on a private side object
    // (committed work that a parent abort would destroy), then accesses the
    // contended object at PARENT level — the Fig. 2/3 situation where the
    // scheduler decides the fate of a parent holding committed children.
    let mut side_oids = Vec::new();
    {
        let mut candidate = oid.0 + 1;
        while side_oids.len() < writers {
            side_oids.push(ObjectId(candidate));
            candidate += 1;
        }
    }

    let mut programs: Vec<Vec<BoxedProgram>> = vec![Vec::new(); n];
    // Node 0 holds the object and runs nothing.
    for w in 0..writers {
        // First writer starts immediately; the rest start staggered so they
        // request o1 while the first is validating.
        let start_ms = if w == 0 { 0 } else { 35 + 5 * w as u64 };
        let prog = ScriptProgram::new(
            TxKind(1),
            vec![
                ScriptOp::Compute(SimDuration::from_millis(start_ms)),
                ScriptOp::OpenNested(TxKind(2)),
                ScriptOp::Write(side_oids[w]),
                ScriptOp::AddScalar(side_oids[w], 1),
                ScriptOp::CloseNested,
                ScriptOp::Write(oid),
                ScriptOp::AddScalar(oid, 1),
                ScriptOp::Compute(SimDuration::from_millis(5)),
            ],
        );
        programs[1 + w].push(Box::new(prog));
    }
    for r in 0..readers {
        let prog = ScriptProgram::new(
            TxKind(3),
            vec![
                ScriptOp::Compute(SimDuration::from_millis(38 + 3 * r as u64)),
                ScriptOp::OpenNested(TxKind(4)),
                ScriptOp::Read(oid),
                ScriptOp::CloseNested,
            ],
        );
        programs[1 + writers + r].push(Box::new(prog));
    }

    let mut objects = vec![(oid, Payload::Scalar(0))];
    for s in &side_oids {
        objects.push((*s, Payload::Scalar(0)));
    }
    let mut system = SystemBuilder::new(topo, cfg)
        .seed(7)
        .build(WorkloadSource { objects, programs });
    let metrics = system.run(5_000_000);
    let all_done = system.all_done();
    let state = system.object_state();
    let final_value = state[&oid].0.as_scalar();
    let trace_log = if trace {
        let mut t = system.take_trace();
        t.push_summary(system.now(), &metrics.merged);
        Some(t)
    } else {
        None
    };
    (
        ScenarioResult {
            metrics,
            final_value,
            all_done,
        },
        trace_log,
    )
}

/// Render a scenario result as a small report.
pub fn render(title: &str, r: &ScenarioResult) -> String {
    let m = &r.metrics.merged;
    format!(
        "{title}\n\
         commits                {}\n\
         final object value     {}\n\
         aborts: scheduler      {}\n\
         aborts: commit-valid.  {}\n\
         aborts: forward-valid. {}\n\
         aborts: queue-timeout  {}\n\
         enqueued / served      {} / {}\n\
         nested aborts own/par  {} / {}\n",
        m.commits,
        r.final_value,
        m.aborts_scheduler,
        m.aborts_commit_validation,
        m.aborts_forward_validation,
        m.aborts_queue_timeout,
        m.enqueued,
        m.queue_served,
        m.nested_aborts_own,
        m.nested_aborts_parent,
    )
}

/// The `WorkloadParams` are unused here but kept for symmetry with other
/// experiments' signatures.
pub fn default_params() -> WorkloadParams {
    WorkloadParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_tfa_shows_both_abort_kinds() {
        let r = run_collision(SchedulerKind::Tfa, 6, 0);
        assert!(r.all_done, "scenario stalled");
        assert_eq!(r.metrics.merged.commits, 6);
        assert_eq!(r.final_value, 6, "increments must serialize");
        // TFA never enqueues.
        assert_eq!(r.metrics.merged.enqueued, 0);
        // Both abort kinds of Fig. 2 occur.
        assert!(
            r.metrics.merged.aborts_scheduler > 0,
            "no lock-busy aborts: {:?}",
            r.metrics.merged
        );
        assert!(
            r.metrics.merged.aborts_commit_validation + r.metrics.merged.aborts_forward_validation
                > 0,
            "no validation aborts: {:?}",
            r.metrics.merged
        );
    }

    #[test]
    fn fig3_rts_enqueues_and_serves() {
        let r = run_collision(SchedulerKind::Rts, 6, 0);
        assert!(r.all_done, "scenario stalled");
        assert_eq!(r.metrics.merged.commits, 6);
        assert_eq!(r.final_value, 6);
        assert!(r.metrics.merged.enqueued > 0, "RTS never enqueued");
        assert!(r.metrics.merged.queue_served > 0, "queue never served");
    }

    #[test]
    fn fig3_readers_fan_out() {
        let r = run_collision(SchedulerKind::Rts, 1, 3);
        assert!(r.all_done);
        assert_eq!(r.metrics.merged.commits, 4);
        assert_eq!(r.final_value, 1);
    }

    #[test]
    fn rts_replaces_lock_busy_aborts_with_queueing() {
        // The defining mechanical difference of §III: requests that hit a
        // validating object abort under TFA but are parked under RTS. (A
        // single-object pileup cannot show RTS's throughput win — every
        // commit invalidates every outstanding copy regardless of scheduler
        // — so we assert the mechanism, not the totals; Figs. 4–6 measure
        // the totals on the real workloads.)
        let tfa = run_collision(SchedulerKind::Tfa, 6, 0);
        let rts = run_collision(SchedulerKind::Rts, 6, 0);
        assert!(tfa.metrics.merged.aborts_scheduler > 0);
        assert_eq!(tfa.metrics.merged.enqueued, 0);
        assert!(
            rts.metrics.merged.aborts_scheduler < tfa.metrics.merged.aborts_scheduler,
            "RTS should park (not abort) lock-busy requesters: RTS {} vs TFA {}",
            rts.metrics.merged.aborts_scheduler,
            tfa.metrics.merged.aborts_scheduler
        );
        assert!(rts.metrics.merged.enqueued > 0);
    }
}
