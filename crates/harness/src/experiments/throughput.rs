//! Figures 4 and 5 — transactional throughput vs node count.
//!
//! One sub-figure per benchmark; three series (RTS, TFA, TFA+Backoff);
//! x-axis 10..80 nodes. Fig. 4 is low contention (90% reads), Fig. 5 high
//! contention (10% reads). The paper's qualitative claims, which the bench
//! checks: RTS dominates both baselines on every benchmark, TFA generally
//! beats TFA+Backoff, high contention lowers absolute throughput but
//! *increases* RTS's relative advantage, and the short-transaction
//! microbenchmarks out-throughput Vacation/Bank.

use super::{Scale, SCHEDULERS};
use crate::runner::{run_cells, Cell, CellResult};
use crate::table::SeriesTable;
use dstm_benchmarks::Benchmark;

/// All sub-figures of one contention level.
#[derive(Clone, Debug)]
pub struct ThroughputFigure {
    pub read_ratio: f64,
    pub figures: Vec<(Benchmark, SeriesTable)>,
    pub raw: Vec<CellResult>,
}

impl ThroughputFigure {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (_, fig) in &self.figures {
            out.push_str(&fig.render());
            out.push('\n');
        }
        out
    }

    /// Throughput series of one benchmark × scheduler.
    pub fn series(&self, b: Benchmark, scheduler_label: &str) -> Vec<f64> {
        self.figures
            .iter()
            .find(|(fb, _)| *fb == b)
            .map(|(_, fig)| fig.series(scheduler_label))
            .unwrap_or_default()
    }

    /// Mean throughput of one benchmark × scheduler across node counts.
    pub fn mean(&self, b: Benchmark, scheduler_label: &str) -> f64 {
        let s = self.series(b, scheduler_label);
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }
}

/// Run one contention level (0.9 → Fig. 4, 0.1 → Fig. 5).
pub fn run(scale: &Scale, read_ratio: f64, workers: Option<usize>) -> ThroughputFigure {
    let mut cells = Vec::new();
    for &b in &Benchmark::ALL {
        for &nodes in &scale.node_counts {
            for s in SCHEDULERS {
                cells.push(Cell::new(b, s, nodes, read_ratio).with_txns(scale.txns_per_node));
            }
        }
    }
    let results = run_cells(cells, workers);

    let contention = if read_ratio >= 0.5 { "Low" } else { "High" };
    let mut figures = Vec::new();
    let mut idx = 0;
    for &b in &Benchmark::ALL {
        let mut fig = SeriesTable::new(
            format!("{} in {} Contention (txns/s)", b.label(), contention),
            "nodes".to_string(),
            SCHEDULERS.iter().map(|s| s.label().to_string()).collect(),
        );
        for &nodes in &scale.node_counts {
            let ys: Vec<f64> = SCHEDULERS
                .iter()
                .map(|_| {
                    let r = &results[idx];
                    idx += 1;
                    r.throughput()
                })
                .collect();
            fig.point(nodes as u64, ys);
        }
        figures.push((b, fig));
    }
    ThroughputFigure {
        read_ratio,
        figures,
        raw: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_figure_structure() {
        let f = run(&Scale::smoke(), 0.9, Some(1));
        assert_eq!(f.figures.len(), 6);
        for (b, fig) in &f.figures {
            assert_eq!(fig.points.len(), 2, "{}", b.label());
            for (_, ys) in &fig.points {
                assert!(ys.iter().all(|y| *y > 0.0), "{} zero throughput", b.label());
            }
        }
        // Every cell must have completed its whole workload.
        assert!(f.raw.iter().all(|r| r.completed), "some cells stalled");
        let rendered = f.render();
        assert!(rendered.contains("Low Contention"));
    }
}
