//! Heap-allocation counting for kernel benchmarks.
//!
//! Behind the `bench-alloc` feature this module installs a counting
//! [`GlobalAlloc`] that wraps the system allocator with three relaxed
//! atomics: total allocation count, current live bytes, and peak live
//! bytes. `dstm-sweep kernel` resets the counters around each timed trial
//! and records allocations-per-event plus peak bytes into
//! `BENCH_kernel.json`, turning "steady-state event handling allocates
//! (almost) nothing" from a claim into a tracked number.
//!
//! With the feature off every probe compiles to zeros and no allocator is
//! installed, so the default build's timings are untouched.

#[cfg(feature = "bench-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// System allocator wrapped with relaxed counters.
    pub struct CountingAlloc;

    // SAFETY: defers all allocation to `System`; only adds atomic counting.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            let live = CURRENT.fetch_add(layout.size(), Relaxed) + layout.size();
            PEAK.fetch_max(live, Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            CURRENT.fetch_sub(layout.size(), Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            if new_size >= layout.size() {
                let live =
                    CURRENT.fetch_add(new_size - layout.size(), Relaxed) + new_size - layout.size();
                PEAK.fetch_max(live, Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Relaxed);
            }
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn reset() {
        ALLOCS.store(0, Relaxed);
        // Live bytes persist across resets (objects allocated before the
        // reset are still live); the peak restarts from the current level.
        PEAK.store(CURRENT.load(Relaxed), Relaxed);
    }

    pub fn allocs() -> u64 {
        ALLOCS.load(Relaxed)
    }

    pub fn peak_bytes() -> usize {
        PEAK.load(Relaxed)
    }
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "bench-alloc")
}

/// Zero the allocation count and restart peak tracking from the current
/// live size. No-op without `bench-alloc`.
///
/// Counters are process-global and exact under concurrency: every
/// allocation on every thread — worker-pool cells, shard threads — is an
/// atomic increment, and live-byte accounting never drifts because
/// `CURRENT` is monotone with respect to alloc/dealloc pairs (it is never
/// zeroed, so a cross-reset free subtracts exactly what its allocation
/// added). The one sharp edge is *attribution*: resetting while other
/// threads are mid-run credits their in-flight allocations to the new
/// window. Bracket whole pooled sweeps (as `dstm-sweep --scale large`
/// does), or individual cells only on a quiesced pool.
pub fn reset() {
    #[cfg(feature = "bench-alloc")]
    imp::reset();
}

/// Counters since the last [`reset`]: `(allocations, peak_live_bytes)`.
/// Zeros without `bench-alloc`.
pub fn snapshot() -> (u64, usize) {
    #[cfg(feature = "bench-alloc")]
    return (imp::allocs(), imp::peak_bytes());
    #[cfg(not(feature = "bench-alloc"))]
    (0, 0)
}

#[cfg(all(test, feature = "bench-alloc"))]
mod tests {
    #[test]
    fn counts_vec_growth() {
        super::reset();
        let v: Vec<u64> = (0..10_000).collect();
        let (allocs, peak) = super::snapshot();
        assert!(allocs > 0, "Vec growth not counted");
        assert!(peak >= v.len() * 8, "peak {peak} below live size");
        drop(v);
    }

    /// Counters must stay exact when allocations come from many threads at
    /// once (the worker pool and the sharded executor both do this): no
    /// lost increments, and the peak must see the simultaneously-live sum.
    #[test]
    fn multithreaded_counts_are_exact() {
        use std::sync::{Arc, Barrier};

        const THREADS: usize = 4;
        const PER_THREAD: usize = 256;
        const BLOCK: usize = 64 * 1024;

        super::reset();
        let (base_allocs, _) = super::snapshot();
        let all_live = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let all_live = Arc::clone(&all_live);
                std::thread::spawn(move || {
                    // Churn: every iteration is one counted allocation.
                    for i in 0..PER_THREAD - 1 {
                        let v = vec![0u8; 1 + i % 13];
                        std::hint::black_box(&v);
                    }
                    // Hold one big block while every thread is live, so the
                    // true peak is at least THREADS * BLOCK.
                    let big = vec![0u8; BLOCK];
                    all_live.wait();
                    std::hint::black_box(&big);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (allocs, peak) = super::snapshot();
        assert!(
            allocs - base_allocs >= (THREADS * PER_THREAD) as u64,
            "lost increments: {} counted, {} known allocations",
            allocs - base_allocs,
            THREADS * PER_THREAD
        );
        assert!(
            peak >= THREADS * BLOCK,
            "peak {peak} below the {} bytes simultaneously live",
            THREADS * BLOCK
        );
    }
}
