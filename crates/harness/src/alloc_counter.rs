//! Heap-allocation counting for kernel benchmarks.
//!
//! Behind the `bench-alloc` feature this module installs a counting
//! [`GlobalAlloc`] that wraps the system allocator with three relaxed
//! atomics: total allocation count, current live bytes, and peak live
//! bytes. `dstm-sweep kernel` resets the counters around each timed trial
//! and records allocations-per-event plus peak bytes into
//! `BENCH_kernel.json`, turning "steady-state event handling allocates
//! (almost) nothing" from a claim into a tracked number.
//!
//! With the feature off every probe compiles to zeros and no allocator is
//! installed, so the default build's timings are untouched.

#[cfg(feature = "bench-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// System allocator wrapped with relaxed counters.
    pub struct CountingAlloc;

    // SAFETY: defers all allocation to `System`; only adds atomic counting.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            let live = CURRENT.fetch_add(layout.size(), Relaxed) + layout.size();
            PEAK.fetch_max(live, Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            CURRENT.fetch_sub(layout.size(), Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            if new_size >= layout.size() {
                let live =
                    CURRENT.fetch_add(new_size - layout.size(), Relaxed) + new_size - layout.size();
                PEAK.fetch_max(live, Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Relaxed);
            }
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn reset() {
        ALLOCS.store(0, Relaxed);
        // Live bytes persist across resets (objects allocated before the
        // reset are still live); the peak restarts from the current level.
        PEAK.store(CURRENT.load(Relaxed), Relaxed);
    }

    pub fn allocs() -> u64 {
        ALLOCS.load(Relaxed)
    }

    pub fn peak_bytes() -> usize {
        PEAK.load(Relaxed)
    }
}

/// Whether the counting allocator is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "bench-alloc")
}

/// Zero the allocation count and restart peak tracking from the current
/// live size. No-op without `bench-alloc`.
pub fn reset() {
    #[cfg(feature = "bench-alloc")]
    imp::reset();
}

/// Counters since the last [`reset`]: `(allocations, peak_live_bytes)`.
/// Zeros without `bench-alloc`.
pub fn snapshot() -> (u64, usize) {
    #[cfg(feature = "bench-alloc")]
    return (imp::allocs(), imp::peak_bytes());
    #[cfg(not(feature = "bench-alloc"))]
    (0, 0)
}

#[cfg(all(test, feature = "bench-alloc"))]
mod tests {
    #[test]
    fn counts_vec_growth() {
        super::reset();
        let v: Vec<u64> = (0..10_000).collect();
        let (allocs, peak) = super::snapshot();
        assert!(allocs > 0, "Vec growth not counted");
        assert!(peak >= v.len() * 8, "peak {peak} below live size");
        drop(v);
    }
}
