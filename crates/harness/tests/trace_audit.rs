//! End-to-end: record real runs with protocol tracing, round-trip the
//! JSONL, and audit the invariants offline — the same path the CI smoke
//! job exercises through the `dstm-trace` binary.

use dstm_benchmarks::Benchmark;
use dstm_harness::experiments::scenarios::run_collision_traced;
use dstm_harness::traceio::audit;
use dstm_harness::{run_cell_traced, Cell};
use hyflow_dstm::{ProtoEvent, TraceLog};
use rts_core::SchedulerKind;

fn audit_round_tripped(trace: &TraceLog) -> dstm_harness::AuditReport {
    // Audit the parsed-back trace, not the in-memory one, so the JSONL
    // encoding itself is under test.
    let parsed = TraceLog::parse_jsonl(&trace.to_jsonl()).expect("trace must parse");
    assert_eq!(parsed.records.len(), trace.records.len());
    audit(&parsed)
}

#[test]
fn fig3_scenario_trace_passes_audit() {
    let (result, trace) = run_collision_traced(SchedulerKind::Rts, 6, 2);
    assert!(result.all_done);
    let report = audit_round_tripped(&trace);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.summary_checked, "RunSummary record missing");
    assert!(report.commits_checked as u64 >= result.metrics.merged.commits);
    // The RTS collision parks requesters, so enqueue decisions must appear.
    assert!(trace
        .records
        .iter()
        .any(|r| matches!(&r.ev, ProtoEvent::SchedDecision { .. })));
}

#[test]
fn fig2_tfa_scenario_trace_passes_audit() {
    let (result, trace) = run_collision_traced(SchedulerKind::Tfa, 6, 0);
    assert!(result.all_done);
    let report = audit_round_tripped(&trace);
    assert!(report.ok(), "violations: {:?}", report.violations);
    // Fig. 2 shows aborts; every one must appear as a span.
    let aborts = trace
        .records
        .iter()
        .filter(|r| matches!(&r.ev, ProtoEvent::TxAbort { .. }))
        .count() as u64;
    assert_eq!(aborts, result.metrics.merged.total_aborts());
}

#[test]
fn benchmark_cell_traces_pass_audit_under_all_schedulers() {
    for s in [
        SchedulerKind::Tfa,
        SchedulerKind::TfaBackoff,
        SchedulerKind::Rts,
    ] {
        let mut cell = Cell::new(Benchmark::Bank, s, 4, 0.5).with_txns(4);
        cell.params.objects_per_node = 4;
        let (result, trace) = run_cell_traced(cell);
        assert!(result.completed, "{s:?} cell stalled");
        let report = audit_round_tripped(&trace);
        assert!(report.ok(), "{s:?} violations: {:?}", report.violations);
        assert!(report.summary_checked);
        assert_eq!(report.commits_checked as u64, result.metrics.merged.commits);
    }
}

#[test]
fn empty_trace_fails_audit() {
    // Regression: a truncated capture or untraced run must not vacuously
    // pass (`dstm-trace audit` exits non-zero on a violating report).
    let report = audit(&TraceLog::default());
    assert!(!report.ok(), "empty trace passed the audit");
    assert!(
        report.violations[0].contains("no protocol records"),
        "unexpected violation: {:?}",
        report.violations
    );
}

#[test]
fn header_only_trace_fails_audit() {
    use dstm_sim::SimTime;
    use hyflow_dstm::{NodeMetrics, SchedLabel};
    let mut trace = TraceLog::default();
    trace.push_run_info(SchedLabel::from_label("RTS").unwrap(), 4);
    trace.push_summary(SimTime(1_000), &NodeMetrics::default());
    // Round-trip through JSONL like the CLI does.
    let parsed = TraceLog::parse_jsonl(&trace.to_jsonl()).expect("header-only trace must parse");
    let report = audit(&parsed);
    assert!(!report.ok(), "header-only trace passed the audit");
    assert!(report.violations[0].contains("no protocol records"));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Determinism guard: recording events must not change any simulated
    // outcome — identical commits, messages, and virtual elapsed time.
    let mk = || {
        let mut c = Cell::new(Benchmark::LinkedList, SchedulerKind::Rts, 4, 0.5).with_txns(4);
        c.params.objects_per_node = 4;
        c
    };
    let plain = dstm_harness::run_cell(mk());
    let (traced, trace) = run_cell_traced(mk());
    assert!(!trace.records.is_empty());
    assert_eq!(plain.metrics.merged.commits, traced.metrics.merged.commits);
    assert_eq!(
        plain.metrics.merged.total_aborts(),
        traced.metrics.merged.total_aborts()
    );
    assert_eq!(plain.metrics.messages, traced.metrics.messages);
    assert_eq!(plain.metrics.elapsed, traced.metrics.elapsed);
}
