//! Steady-state allocation guard for the sharded executor's mailboxes.
//!
//! The per-window cross-shard mailboxes are pooled: posting swaps a shard's
//! outbox into the matrix slot and draining appends into a retained scratch
//! vector, so once every `mail[dst * S + src]` vector has grown to its
//! high-water capacity, running more windows must allocate nothing extra.
//! This test turns that claim into an assertion: the *allocation overhead of
//! sharding* (sharded minus serial, same cell) must not grow with the number
//! of simulated transactions. If a per-window `Vec::new` sneaks back into
//! the exchange path, the big run's overhead scales with its window count
//! and the bound breaks.
//!
//! Only meaningful with the counting allocator installed; without the
//! feature the probes read zero and the test would pass vacuously, so it is
//! compiled out entirely.
#![cfg(feature = "bench-alloc")]

use dstm_benchmarks::Benchmark;
use dstm_harness::runner::{run_cell, Cell};
use dstm_harness::{alloc_counter, TopologySpec};
use hyflow_dstm::PartitionStrategy;
use rts_core::SchedulerKind;

fn cell(txns: usize, shards: usize) -> Cell {
    Cell::new(Benchmark::Bank, SchedulerKind::Rts, 16, 0.5)
        .with_txns(txns)
        .with_topology(TopologySpec::HashedRandom {
            min_ms: 1,
            max_ms: 50,
        })
        .with_shards(shards)
        .with_partition(PartitionStrategy::Locality)
}

/// Allocations of one full cell run, measured in isolation.
fn allocs_of(c: Cell) -> i128 {
    alloc_counter::reset();
    let r = run_cell(c);
    assert!(r.completed, "cell stalled");
    let (allocs, _) = alloc_counter::snapshot();
    i128::from(allocs)
}

#[test]
fn mailbox_exchange_allocates_nothing_in_steady_state() {
    assert!(alloc_counter::enabled());

    // Warm up lazy process-wide state (thread-pool bookkeeping, lazily
    // initialised statics) so it isn't credited to the first measured run.
    allocs_of(cell(2, 4));

    // Small and ~4x-larger workloads: more transactions means more events,
    // more windows, and more mailbox exchanges — but the same shard count,
    // so the same mailbox matrix.
    let small_serial = allocs_of(cell(5, 1));
    let small_sharded = allocs_of(cell(5, 4));
    let big_serial = allocs_of(cell(20, 1));
    let big_sharded = allocs_of(cell(20, 4));

    let d_small = small_sharded - small_serial;
    let d_big = big_sharded - big_serial;

    // The sharding overhead is thread spawns, the partition/lookahead
    // vectors, and initial mailbox growth — all independent of the event
    // count. The slack absorbs capacity-doubling on the pooled vectors
    // (the bigger run has bigger per-window batches) and allocator noise;
    // a per-window allocation would blow through it by orders of
    // magnitude (the big run executes thousands of windows).
    let slack: i128 = 4096;
    assert!(
        d_big <= d_small + slack,
        "sharding allocation overhead grew with workload size: \
         small delta {d_small}, big delta {d_big} (slack {slack}); \
         a per-window allocation is back in the mailbox exchange path"
    );
}
