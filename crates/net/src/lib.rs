//! # dstm-net — network topologies and delay models
//!
//! The paper's testbed is a static message-passing network: *"Communication
//! delay between nodes is limited to a number between 1 and 50 msec to create
//! a static network"* (§IV-A), and the analysis of §III-D assumes nodes
//! *"scattered in a metric space"* where `d(ni, nj)` is the distance between
//! nodes.
//!
//! This crate provides that substrate:
//!
//! * [`Topology`] — an `n × n` static delay matrix with several generators:
//!   uniform random delays in a range (the experimental setup), points in a
//!   2-D plane (a true metric space, used by the analysis reproduction),
//!   rings, and clustered networks;
//! * metric-space utilities used by the §III-D makespan analysis
//!   (nearest-neighbour tours, sums of distances, metricity checks).
//!
//! Delays are symmetric and zero on the diagonal (local calls are modelled
//! separately by the D-STM layer as local execution time).

pub mod topology;

pub use topology::{Topology, TopologyKind};
