//! Network topologies: per-pair one-way delays behind a single [`Topology`]
//! API, with per-kind storage.
//!
//! A topology used to always materialize the full O(n²) delay matrix. That
//! caps the node counts a sweep can reach (memory and generation time both
//! scale quadratically), so storage is now per-representation:
//!
//! * **Dense matrix** — only for [`Topology::uniform_random`], whose delays
//!   are drawn from a *sequential* rejection-sampling RNG stream and
//!   therefore cannot be recomputed pair-by-pair. Kept byte-identical to the
//!   original generator so every existing seed reproduces the same network.
//! * **On-demand** — every other kind stores O(n) coordinates (plane) or
//!   O(1) parameters (ring / clustered / complete) and computes `delay(a,b)`
//!   when asked, producing exactly the values the old matrices held.
//! * **Hashed** — a new O(1)-memory uniform-random kind for large-scale
//!   sweeps: each pair's delay is a stateless [`mix64`] of
//!   `(seed, a, b)`, so a 100k-node topology costs nothing to "build".
//!   Statistically equivalent to `uniform_random` but a different stream —
//!   use it for new large-scale experiments, not to reproduce old runs.

use dstm_sim::{mix64, ActorId, SimDuration, SimRng};

/// How a topology was generated (kept for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Symmetric i.i.d. delays in a range — the paper's experimental setup.
    UniformRandom,
    /// Points placed uniformly in a square; delay ∝ Euclidean distance.
    /// A true metric space (triangle inequality holds).
    MetricPlane,
    /// Nodes on a ring; delay ∝ hop distance.
    Ring,
    /// Dense clusters with cheap intra-cluster and expensive inter-cluster links.
    Clustered,
    /// Constant delay between every distinct pair.
    Complete,
    /// Symmetric i.i.d. delays computed on demand by hashing the pair —
    /// O(1) memory, for production-scale node counts.
    HashedRandom,
}

/// Per-kind delay storage (see the module docs).
#[derive(Clone, Debug)]
enum Repr {
    /// Row-major delays; `delays[a * n + b]`, symmetric, zero diagonal.
    Dense(Vec<SimDuration>),
    /// Point coordinates in ms; delay = Euclidean distance + fixed offset.
    Plane {
        pts: Vec<(f64, f64)>,
        min_ms: u64,
    },
    Ring {
        hop_ms: u64,
    },
    Clustered {
        clusters: usize,
        intra_ms: u64,
        inter_ms: u64,
    },
    Complete {
        d: SimDuration,
    },
    Hashed {
        seed: u64,
        min_ms: u64,
        max_ms: u64,
    },
}

/// A static, symmetric delay function over `n` nodes.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    repr: Repr,
    kind: TopologyKind,
}

impl Topology {
    fn from_matrix(n: usize, delays: Vec<SimDuration>, kind: TopologyKind) -> Self {
        debug_assert_eq!(delays.len(), n * n);
        Topology {
            n,
            repr: Repr::Dense(delays),
            kind,
        }
    }

    /// The paper's setup: every distinct pair gets an independent uniform
    /// delay in `[min_ms, max_ms]` milliseconds (defaults 1–50 in the
    /// harness). Symmetric; the matrix is fixed for the whole run ("static
    /// network"). Dense storage: the sequential RNG stream cannot be
    /// replayed per pair, and existing seeds must keep their exact network.
    pub fn uniform_random(n: usize, min_ms: u64, max_ms: u64, rng: &mut SimRng) -> Self {
        assert!(n > 0 && min_ms <= max_ms);
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = SimDuration::from_millis(rng.range_inclusive(min_ms, max_ms));
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::UniformRandom)
    }

    /// Like [`Topology::uniform_random`] but with O(1) memory: each pair's
    /// delay is a stateless hash of `(seed, a, b)`, computed on demand.
    /// Same distribution, different stream — the large-scale sweep setup.
    pub fn hashed_random(n: usize, min_ms: u64, max_ms: u64, seed: u64) -> Self {
        assert!(n > 0 && min_ms <= max_ms);
        Topology {
            n,
            repr: Repr::Hashed {
                seed,
                min_ms,
                max_ms,
            },
            kind: TopologyKind::HashedRandom,
        }
    }

    /// Uniform points in a `side_ms × side_ms` square; delay is the Euclidean
    /// distance in milliseconds **plus** a `min_ms` per-hop offset. The
    /// additive offset models fixed link overhead and — unlike clamping —
    /// preserves the triangle inequality, so this is a true metric space,
    /// used to validate the §III-D analysis. Stores only the n coordinates;
    /// delays are computed on demand (bit-identical to the old matrix).
    pub fn metric_plane(n: usize, side_ms: f64, min_ms: u64, rng: &mut SimRng) -> Self {
        assert!(n > 0 && side_ms > 0.0);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.unit_f64() * side_ms, rng.unit_f64() * side_ms))
            .collect();
        Topology {
            n,
            repr: Repr::Plane { pts, min_ms },
            kind: TopologyKind::MetricPlane,
        }
    }

    /// Ring of `n` nodes; delay between `a` and `b` is `hop_ms` times the
    /// shorter hop count around the ring. Also a metric. O(1) storage.
    pub fn ring(n: usize, hop_ms: u64) -> Self {
        assert!(n > 0);
        Topology {
            n,
            repr: Repr::Ring { hop_ms },
            kind: TopologyKind::Ring,
        }
    }

    /// `clusters` equal groups; `intra_ms` within a group, `inter_ms`
    /// between groups (inter > intra keeps it metric). O(1) storage.
    pub fn clustered(n: usize, clusters: usize, intra_ms: u64, inter_ms: u64) -> Self {
        assert!(n > 0 && clusters > 0);
        assert!(
            inter_ms >= intra_ms,
            "inter-cluster delay must dominate for metricity"
        );
        Topology {
            n,
            repr: Repr::Clustered {
                clusters,
                intra_ms,
                inter_ms,
            },
            kind: TopologyKind::Clustered,
        }
    }

    /// Constant delay `d_ms` between every distinct pair. O(1) storage.
    pub fn complete(n: usize, d_ms: u64) -> Self {
        assert!(n > 0);
        Topology {
            n,
            repr: Repr::Complete {
                d: SimDuration::from_millis(d_ms),
            },
            kind: TopologyKind::Complete,
        }
    }

    /// Materialize this topology into a dense matrix (same kind, same
    /// delays). Differential tests compare on-demand representations
    /// against their materialized form; not useful in production paths.
    pub fn to_dense(&self) -> Topology {
        let mut delays = vec![SimDuration::ZERO; self.n * self.n];
        for a in 0..self.n {
            for b in 0..self.n {
                delays[a * self.n + b] = self.d(a, b);
            }
        }
        Topology::from_matrix(self.n, delays, self.kind)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Index-based delay lookup (internal form of [`Topology::delay`]).
    #[inline]
    fn d(&self, a: usize, b: usize) -> SimDuration {
        match &self.repr {
            Repr::Dense(delays) => delays[a * self.n + b],
            _ if a == b => SimDuration::ZERO,
            Repr::Plane { pts, min_ms } => {
                let dx = pts[a].0 - pts[b].0;
                let dy = pts[a].1 - pts[b].1;
                let ms = (dx * dx + dy * dy).sqrt();
                SimDuration::from_nanos((ms * 1e6) as u64 + min_ms * 1_000_000)
            }
            Repr::Ring { hop_ms } => {
                let fwd = (b + self.n - a) % self.n;
                let hops = fwd.min(self.n - fwd) as u64;
                SimDuration::from_millis(hops * hop_ms)
            }
            Repr::Clustered {
                clusters,
                intra_ms,
                inter_ms,
            } => {
                let same = (a % clusters) == (b % clusters);
                SimDuration::from_millis(if same { *intra_ms } else { *inter_ms })
            }
            Repr::Complete { d } => *d,
            Repr::Hashed {
                seed,
                min_ms,
                max_ms,
            } => {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                let h = mix64(seed ^ mix64(((lo as u64) << 32) | hi as u64));
                let span = max_ms - min_ms + 1;
                // Multiply-shift maps the hash uniformly onto the range
                // without the modulo bias of `h % span`.
                let ms = min_ms + ((u128::from(h) * u128::from(span)) >> 64) as u64;
                SimDuration::from_millis(ms)
            }
        }
    }

    /// One-way message delay between two nodes. Zero for `a == b`.
    #[inline]
    pub fn delay(&self, a: ActorId, b: ActorId) -> SimDuration {
        self.d(a.index(), b.index())
    }

    /// Round-trip delay `2 × d(a, b)` — the cost of one remote object fetch
    /// (request + response), the quantity the paper's makespan analysis sums.
    #[inline]
    pub fn rtt(&self, a: ActorId, b: ActorId) -> SimDuration {
        self.delay(a, b) * 2
    }

    /// Mean one-way delay over distinct pairs.
    pub fn mean_delay(&self) -> SimDuration {
        if self.n < 2 {
            return SimDuration::ZERO;
        }
        let mut sum = 0u128;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    sum += self.d(a, b).as_nanos() as u128;
                }
            }
        }
        let pairs = (self.n * (self.n - 1)) as u128;
        SimDuration::from_nanos((sum / pairs) as u64)
    }

    /// Minimum one-way delay over distinct pairs — the **lookahead** of the
    /// conservative sharded executor (`GenericWorld::run_sharded`): no
    /// message between different nodes can arrive sooner than this, so a
    /// synchronized window of this width is safe to execute without
    /// cross-shard coordination. Every generator keeps delays ≥ 1 ms, so
    /// this is ≥ 1 ms in practice; a degenerate single-node topology
    /// (no pairs) reports 1 ms as a harmless fallback.
    pub fn min_delay(&self) -> SimDuration {
        let mut min: Option<SimDuration> = None;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    let d = self.d(a, b);
                    min = Some(min.map_or(d, |m| m.min(d)));
                }
            }
        }
        min.unwrap_or(SimDuration::from_millis(1))
    }

    /// Per-shard-pair minimum one-way delay — the **lookahead matrix** of
    /// the conservative sharded executor (`GenericWorld::run_partitioned`).
    ///
    /// `shard_of[node]` assigns every node to one of `shards` shards; the
    /// result is a row-major `shards × shards` matrix `L` where `L[p*S+q]`
    /// is a lower bound on the delay of *any* message from a node in shard
    /// `p` to a node in shard `q`. Whenever two shards have no fast links
    /// between them, their mutual windows can be much wider than the
    /// fleet-wide [`Topology::min_delay`] — that is the whole point.
    ///
    /// Conventions:
    /// * the diagonal is [`SimDuration::MAX`] (a shard never constrains
    ///   itself through this matrix; cycles are handled by the executor's
    ///   min-plus closure),
    /// * a pair with no node pairs at all — either shard empty — is
    ///   "disconnected" and also reports [`SimDuration::MAX`] (∞ lookahead:
    ///   no message can ever cross it).
    ///
    /// Cost is O(n²) only for the representations that genuinely need an
    /// exhaustive pair scan (dense matrices, metric planes). Ring is a
    /// doubled-circle sweep in O(n·S); clustered reduces to residue-set
    /// overlap in O(n + S²·C); complete is O(S²); hashed uses the
    /// generator's floor `min_ms` in O(n + S²), which is what lets a
    /// 10k-node sweep build its matrix without touching 10⁸ pairs. Every
    /// entry is a *sound* lower bound: for the on-demand kinds it is exact,
    /// for hashed it is the distribution floor (≤ the true pairwise min,
    /// never above it).
    pub fn cross_min_delay(&self, shard_of: &[u32], shards: usize) -> Vec<SimDuration> {
        assert_eq!(
            shard_of.len(),
            self.n,
            "partition covers {} nodes but the topology has {}",
            shard_of.len(),
            self.n
        );
        assert!(shards > 0);
        for (node, &s) in shard_of.iter().enumerate() {
            assert!(
                (s as usize) < shards,
                "node {node} assigned to shard {s}, but only {shards} shards exist"
            );
        }
        let mut out = vec![SimDuration::MAX; shards * shards];
        let mut count = vec![0u64; shards];
        for &s in shard_of {
            count[s as usize] += 1;
        }
        match &self.repr {
            // The sequential-RNG matrix and the plane have no shortcut:
            // exact min over every ordered cross-shard pair.
            Repr::Dense(_) | Repr::Plane { .. } => {
                for a in 0..self.n {
                    let p = shard_of[a] as usize;
                    for (b, &qs) in shard_of.iter().enumerate() {
                        let q = qs as usize;
                        if a == b || p == q {
                            continue;
                        }
                        let d = self.d(a, b);
                        let e = &mut out[p * shards + q];
                        if d < *e {
                            *e = d;
                        }
                    }
                }
            }
            // Doubled-circle sweep: at each position, the nearest preceding
            // occurrence of every other shard yields that pair's forward
            // gap; min(gap, n-gap) is exactly the ring distance of that
            // node pair, and the globally closest pair is always one of
            // the "nearest preceding" pairs some position sees.
            Repr::Ring { hop_ms } => {
                let n = self.n;
                let mut last: Vec<Option<usize>> = vec![None; shards];
                for i in 0..(2 * n) {
                    let t = shard_of[i % n] as usize;
                    for (u, l) in last.iter().enumerate() {
                        if u == t {
                            continue;
                        }
                        if let Some(j) = *l {
                            let gap = i - j;
                            if gap >= n {
                                continue;
                            }
                            let hops = gap.min(n - gap) as u64;
                            let d = SimDuration::from_millis(hops * hop_ms);
                            if d < out[t * shards + u] {
                                out[t * shards + u] = d;
                                out[u * shards + t] = d;
                            }
                        }
                    }
                    last[t] = Some(i);
                }
            }
            // Two shards are `intra_ms` apart iff they both contain a node
            // of some common residue class `node % clusters`.
            Repr::Clustered {
                clusters,
                intra_ms,
                inter_ms,
            } => {
                let c = *clusters;
                let mut present = vec![false; shards * c];
                for (node, &s) in shard_of.iter().enumerate() {
                    present[s as usize * c + node % c] = true;
                }
                for p in 0..shards {
                    for q in 0..shards {
                        if p == q || count[p] == 0 || count[q] == 0 {
                            continue;
                        }
                        let share = (0..c).any(|r| present[p * c + r] && present[q * c + r]);
                        out[p * shards + q] =
                            SimDuration::from_millis(if share { *intra_ms } else { *inter_ms });
                    }
                }
            }
            Repr::Complete { d } => {
                for p in 0..shards {
                    for q in 0..shards {
                        if p != q && count[p] > 0 && count[q] > 0 {
                            out[p * shards + q] = *d;
                        }
                    }
                }
            }
            // The generator guarantees every delay ≥ min_ms; use that floor
            // rather than hashing O(n²) pairs. (At sweep-scale node counts
            // the exhaustive min coincides with the floor w.h.p. anyway.)
            Repr::Hashed { min_ms, .. } => {
                let d = SimDuration::from_millis(*min_ms);
                for p in 0..shards {
                    for q in 0..shards {
                        if p != q && count[p] > 0 && count[q] > 0 {
                            out[p * shards + q] = d;
                        }
                    }
                }
            }
        }
        out
    }

    /// `Σ_i d(from, i)` — total one-way delay from `from` to every node,
    /// the term `Σ d(n0, ni)` in Lemmas 3.2/3.3.
    pub fn sum_delays_from(&self, from: ActorId) -> SimDuration {
        let mut sum = SimDuration::ZERO;
        for b in 0..self.n {
            sum += self.d(from.index(), b);
        }
        sum
    }

    /// Length of a tour visiting `order` in sequence — the term
    /// `Σ d(n(i-1), n(i))` in Lemma 3.3.
    pub fn tour_length(&self, order: &[ActorId]) -> SimDuration {
        order
            .windows(2)
            .map(|w| self.delay(w[0], w[1]))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Greedy nearest-neighbour tour over all nodes starting at `start`.
    /// Rosenkrantz et al. (cited by the paper as [21]) bound NN tours within
    /// `O(log N)` of optimal on metric spaces; the analysis reproduction
    /// checks the paper's use of that bound.
    pub fn nearest_neighbour_tour(&self, start: ActorId) -> Vec<ActorId> {
        let mut visited = vec![false; self.n];
        let mut tour = Vec::with_capacity(self.n);
        let mut cur = start;
        visited[cur.index()] = true;
        tour.push(cur);
        for _ in 1..self.n {
            let mut best: Option<(usize, SimDuration)> = None;
            for (b, seen) in visited.iter().enumerate() {
                if !seen {
                    let d = self.d(cur.index(), b);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((b, d));
                    }
                }
            }
            let (b, _) = best.expect("unvisited node must exist");
            visited[b] = true;
            cur = ActorId(b as u32);
            tour.push(cur);
        }
        tour
    }

    /// Does the topology satisfy the triangle inequality (within exact
    /// integer arithmetic)? `UniformRandom`/`HashedRandom` topologies
    /// generally do not; plane/ring/clustered/complete ones do.
    pub fn is_metric(&self) -> bool {
        for a in 0..self.n {
            for b in 0..self.n {
                let dab = self.d(a, b).as_nanos();
                for c in 0..self.n {
                    let via = self.d(a, c).as_nanos() as u128 + self.d(c, b).as_nanos() as u128;
                    if (dab as u128) > via {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Is the delay function symmetric with a zero diagonal? (Invariant
    /// check used by property tests.)
    pub fn is_well_formed(&self) -> bool {
        for a in 0..self.n {
            if !self.d(a, a).is_zero() {
                return false;
            }
            for b in 0..self.n {
                if self.d(a, b) != self.d(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(2026)
    }

    #[test]
    fn uniform_random_in_range_and_well_formed() {
        let t = Topology::uniform_random(20, 1, 50, &mut rng());
        assert!(t.is_well_formed());
        for a in 0..20 {
            for b in 0..20 {
                if a != b {
                    let ms = t.delay(ActorId(a), ActorId(b)).as_millis();
                    assert!((1..=50).contains(&ms), "delay {ms}ms out of range");
                }
            }
        }
    }

    #[test]
    fn hashed_random_in_range_and_well_formed() {
        let t = Topology::hashed_random(64, 1, 50, 99);
        assert_eq!(t.kind(), TopologyKind::HashedRandom);
        assert!(t.is_well_formed());
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..64 {
            for b in 0..64 {
                if a != b {
                    let ms = t.delay(ActorId(a), ActorId(b)).as_millis();
                    assert!((1..=50).contains(&ms), "delay {ms}ms out of range");
                    seen.insert(ms);
                }
            }
        }
        assert!(seen.len() > 40, "hashed delays barely vary: {}", seen.len());
    }

    #[test]
    fn hashed_random_is_deterministic_and_seed_sensitive() {
        let a = Topology::hashed_random(30, 1, 50, 5);
        let b = Topology::hashed_random(30, 1, 50, 5);
        let c = Topology::hashed_random(30, 1, 50, 6);
        let mut differs = false;
        for x in 0..30 {
            for y in 0..30 {
                assert_eq!(
                    a.delay(ActorId(x), ActorId(y)),
                    b.delay(ActorId(x), ActorId(y))
                );
                differs |= a.delay(ActorId(x), ActorId(y)) != c.delay(ActorId(x), ActorId(y));
            }
        }
        assert!(differs, "seed does not influence hashed delays");
    }

    #[test]
    fn metric_plane_is_metric() {
        let t = Topology::metric_plane(15, 50.0, 1, &mut rng());
        assert!(t.is_well_formed());
        assert!(t.is_metric());
    }

    #[test]
    fn on_demand_reprs_match_materialized_dense() {
        // Every on-demand representation must agree with its own dense
        // materialization at every pair (and stay well-formed).
        let tops = [
            Topology::metric_plane(17, 40.0, 2, &mut rng()),
            Topology::ring(17, 7),
            Topology::clustered(17, 4, 2, 20),
            Topology::complete(17, 9),
            Topology::hashed_random(17, 1, 50, 77),
        ];
        for t in tops {
            let dense = t.to_dense();
            assert_eq!(dense.kind(), t.kind());
            for a in 0..17 {
                for b in 0..17 {
                    assert_eq!(
                        t.delay(ActorId(a), ActorId(b)),
                        dense.delay(ActorId(a), ActorId(b)),
                        "{:?} diverges from its dense form at ({a},{b})",
                        t.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn ring_distances() {
        let t = Topology::ring(6, 10);
        assert_eq!(t.delay(ActorId(0), ActorId(1)).as_millis(), 10);
        assert_eq!(t.delay(ActorId(0), ActorId(3)).as_millis(), 30);
        assert_eq!(t.delay(ActorId(0), ActorId(5)).as_millis(), 10); // wraps
        assert!(t.is_metric());
    }

    #[test]
    fn clustered_delays() {
        let t = Topology::clustered(8, 2, 2, 20);
        // nodes 0 and 2 share cluster (0 % 2 == 2 % 2)
        assert_eq!(t.delay(ActorId(0), ActorId(2)).as_millis(), 2);
        assert_eq!(t.delay(ActorId(0), ActorId(1)).as_millis(), 20);
        assert!(t.is_well_formed());
    }

    #[test]
    fn complete_constant() {
        let t = Topology::complete(5, 7);
        assert_eq!(t.mean_delay().as_millis(), 7);
        assert!(t.is_metric());
        assert_eq!(t.rtt(ActorId(0), ActorId(1)).as_millis(), 14);
    }

    #[test]
    fn sums_and_tours() {
        let t = Topology::ring(4, 10);
        // from node 0: d=0,10,20,10 -> 40 ms
        assert_eq!(t.sum_delays_from(ActorId(0)).as_millis(), 40);
        let tour = t.nearest_neighbour_tour(ActorId(0));
        assert_eq!(tour.len(), 4);
        assert_eq!(tour[0], ActorId(0));
        // NN tour on a ring is 10+10+10 = 30ms
        assert_eq!(t.tour_length(&tour).as_millis(), 30);
    }

    #[test]
    fn nn_tour_visits_each_node_once() {
        let t = Topology::uniform_random(30, 1, 50, &mut rng());
        let tour = t.nearest_neighbour_tour(ActorId(7));
        let mut seen: Vec<u32> = tour.iter().map(|a| a.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn min_delay_is_the_smallest_pairwise_delay() {
        assert_eq!(Topology::complete(5, 7).min_delay().as_millis(), 7);
        assert_eq!(Topology::ring(6, 10).min_delay().as_millis(), 10);
        assert_eq!(Topology::clustered(8, 2, 2, 20).min_delay().as_millis(), 2);
        // Random matrices: min over an exhaustive pair scan, and ≥ the
        // generator's floor — the lookahead guarantee the sharded executor
        // relies on.
        for t in [
            Topology::uniform_random(20, 1, 50, &mut rng()),
            Topology::hashed_random(20, 1, 50, 99),
        ] {
            let mut want = SimDuration::MAX;
            for a in 0..20 {
                for b in 0..20 {
                    if a != b {
                        want = want.min(t.delay(ActorId(a), ActorId(b)));
                    }
                }
            }
            assert_eq!(t.min_delay(), want);
            assert!(t.min_delay() >= SimDuration::from_millis(1));
        }
        // Degenerate: no pairs → 1 ms fallback.
        assert_eq!(Topology::complete(1, 9).min_delay().as_millis(), 1);
    }

    /// Reference implementation: exhaustive min over every cross-shard
    /// node pair, `MAX` on the diagonal and for pairs with no nodes.
    fn brute_cross_min(t: &Topology, shard_of: &[u32], shards: usize) -> Vec<SimDuration> {
        let mut out = vec![SimDuration::MAX; shards * shards];
        for a in 0..t.n() {
            for b in 0..t.n() {
                let (p, q) = (shard_of[a] as usize, shard_of[b] as usize);
                if a == b || p == q {
                    continue;
                }
                let d = t.delay(ActorId(a as u32), ActorId(b as u32));
                out[p * shards + q] = out[p * shards + q].min(d);
            }
        }
        out
    }

    fn round_robin(n: usize, shards: usize) -> Vec<u32> {
        (0..n).map(|g| (g % shards) as u32).collect()
    }

    #[test]
    fn cross_min_delay_complete_is_constant_off_diagonal() {
        let t = Topology::complete(6, 7);
        let m = t.cross_min_delay(&round_robin(6, 3), 3);
        for p in 0..3 {
            for q in 0..3 {
                let want = if p == q {
                    SimDuration::MAX
                } else {
                    SimDuration::from_millis(7)
                };
                assert_eq!(m[p * 3 + q], want, "({p},{q})");
            }
        }
    }

    #[test]
    fn cross_min_delay_ring_matches_brute_force() {
        // Contiguous halves: closest cross pair is at the block boundary
        // (1 hop); also exercise a scrambled partition and an exhaustive
        // comparison against the O(n²) reference.
        let t = Topology::ring(10, 5);
        let halves: Vec<u32> = (0..10).map(|g| u32::from(g >= 5)).collect();
        let m = t.cross_min_delay(&halves, 2);
        assert_eq!(m[1], SimDuration::from_millis(5));
        assert_eq!(m[2], SimDuration::from_millis(5));
        assert_eq!(m[0], SimDuration::MAX);
        assert_eq!(m[3], SimDuration::MAX);
        for shards in [2usize, 3, 4] {
            for shard_of in [
                round_robin(10, shards),
                (0..10).map(|g| ((g * 7 + 3) % shards) as u32).collect(),
            ] {
                assert_eq!(
                    t.cross_min_delay(&shard_of, shards),
                    brute_cross_min(&t, &shard_of, shards),
                    "ring diverges from brute force at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn cross_min_delay_clustered_residue_overlap() {
        let t = Topology::clustered(8, 2, 2, 20);
        // Shard 0 = even nodes (residue 0 only), shard 1 = odd nodes
        // (residue 1 only): no shared residue, so the cross floor is the
        // inter-cluster delay.
        let parity: Vec<u32> = (0..8).map(|g| (g % 2) as u32).collect();
        let m = t.cross_min_delay(&parity, 2);
        assert_eq!(m[1], SimDuration::from_millis(20));
        // Contiguous halves mix both residues on each side → intra floor.
        let halves: Vec<u32> = (0..8).map(|g| u32::from(g >= 4)).collect();
        let m = t.cross_min_delay(&halves, 2);
        assert_eq!(m[1], SimDuration::from_millis(2));
        assert_eq!(
            m,
            brute_cross_min(&t, &halves, 2),
            "clustered diverges from brute force"
        );
    }

    #[test]
    fn cross_min_delay_hashed_uses_generator_floor() {
        // 64 nodes → 2016 distinct pairs over a 50-value range: the
        // exhaustive pairwise min hits the floor (verified below), so the
        // O(n) floor answer is also the exact one.
        let t = Topology::hashed_random(64, 1, 50, 99);
        assert_eq!(t.min_delay(), SimDuration::from_millis(1));
        let m = t.cross_min_delay(&round_robin(64, 4), 4);
        for p in 0..4 {
            for q in 0..4 {
                let want = if p == q {
                    SimDuration::MAX
                } else {
                    SimDuration::from_millis(1)
                };
                assert_eq!(m[p * 4 + q], want, "({p},{q})");
            }
        }
    }

    #[test]
    fn cross_min_delay_degenerate_single_shard_is_all_max() {
        // One shard: the matrix is 1×1 and the diagonal convention makes
        // it MAX — the executor sees no cross-shard constraint at all.
        let t = Topology::ring(6, 10);
        assert_eq!(t.cross_min_delay(&[0; 6], 1), vec![SimDuration::MAX]);
    }

    #[test]
    fn cross_min_delay_empty_shard_pairs_are_disconnected() {
        // Shard 1 holds no nodes: every pair involving it is ∞ — no
        // message can ever cross it, so it never narrows a window.
        let t = Topology::complete(4, 7);
        let shard_of = vec![0, 0, 2, 2];
        let m = t.cross_min_delay(&shard_of, 3);
        for p in 0..3 {
            assert_eq!(m[p * 3 + 1], SimDuration::MAX, "into empty shard {p}");
            assert_eq!(m[3 + p], SimDuration::MAX, "out of empty shard {p}");
        }
        assert_eq!(m[2], SimDuration::from_millis(7));
        assert_eq!(m[6], SimDuration::from_millis(7));
    }

    #[test]
    fn cross_min_delay_matches_brute_force_on_every_repr() {
        let tops = [
            Topology::uniform_random(18, 1, 50, &mut rng()),
            Topology::metric_plane(18, 40.0, 2, &mut rng()),
            Topology::ring(18, 7),
            Topology::clustered(18, 4, 2, 20),
            Topology::complete(18, 9),
        ];
        for t in &tops {
            for shards in [1usize, 2, 3, 5] {
                let shard_of = round_robin(18, shards);
                assert_eq!(
                    t.cross_min_delay(&shard_of, shards),
                    brute_cross_min(t, &shard_of, shards),
                    "{:?} diverges from brute force at {shards} shards",
                    t.kind()
                );
            }
        }
    }

    #[test]
    fn cross_min_delay_entries_never_undercut_global_min_delay() {
        // The acceptance bound: per-pair windows are at least as wide as
        // the old fleet-wide window on every topology kind in the suite
        // (MAX entries are trivially wider).
        let tops = [
            Topology::uniform_random(20, 1, 50, &mut rng()),
            Topology::hashed_random(64, 1, 50, 99),
            Topology::metric_plane(20, 40.0, 2, &mut rng()),
            Topology::ring(20, 7),
            Topology::clustered(20, 4, 2, 20),
            Topology::complete(20, 9),
        ];
        for t in &tops {
            let global = t.min_delay();
            for shards in [2usize, 4, 8] {
                let shard_of = round_robin(t.n(), shards);
                for (i, &d) in t.cross_min_delay(&shard_of, shards).iter().enumerate() {
                    assert!(
                        d >= global,
                        "{:?}: L[{}][{}] = {:?} < global min {:?}",
                        t.kind(),
                        i / shards,
                        i % shards,
                        d,
                        global
                    );
                }
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = Topology::uniform_random(10, 1, 50, &mut SimRng::new(5));
        let b = Topology::uniform_random(10, 1, 50, &mut SimRng::new(5));
        for x in 0..10 {
            for y in 0..10 {
                assert_eq!(
                    a.delay(ActorId(x), ActorId(y)),
                    b.delay(ActorId(x), ActorId(y))
                );
            }
        }
    }
}
