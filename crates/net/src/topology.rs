//! Static delay matrices and their generators.

use dstm_sim::{ActorId, SimDuration, SimRng};

/// How a topology was generated (kept for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Symmetric i.i.d. delays in a range — the paper's experimental setup.
    UniformRandom,
    /// Points placed uniformly in a square; delay ∝ Euclidean distance.
    /// A true metric space (triangle inequality holds).
    MetricPlane,
    /// Nodes on a ring; delay ∝ hop distance.
    Ring,
    /// Dense clusters with cheap intra-cluster and expensive inter-cluster links.
    Clustered,
    /// Constant delay between every distinct pair.
    Complete,
}

/// A static, symmetric `n × n` delay matrix.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    /// Row-major delays; `delays[a * n + b]`, symmetric, zero diagonal.
    delays: Vec<SimDuration>,
    kind: TopologyKind,
}

impl Topology {
    fn from_matrix(n: usize, delays: Vec<SimDuration>, kind: TopologyKind) -> Self {
        debug_assert_eq!(delays.len(), n * n);
        Topology { n, delays, kind }
    }

    /// The paper's setup: every distinct pair gets an independent uniform
    /// delay in `[min_ms, max_ms]` milliseconds (defaults 1–50 in the
    /// harness). Symmetric; the matrix is fixed for the whole run ("static
    /// network").
    pub fn uniform_random(n: usize, min_ms: u64, max_ms: u64, rng: &mut SimRng) -> Self {
        assert!(n > 0 && min_ms <= max_ms);
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = SimDuration::from_millis(rng.range_inclusive(min_ms, max_ms));
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::UniformRandom)
    }

    /// Uniform points in a `side_ms × side_ms` square; delay is the Euclidean
    /// distance in milliseconds **plus** a `min_ms` per-hop offset. The
    /// additive offset models fixed link overhead and — unlike clamping —
    /// preserves the triangle inequality, so this is a true metric space,
    /// used to validate the §III-D analysis.
    pub fn metric_plane(n: usize, side_ms: f64, min_ms: u64, rng: &mut SimRng) -> Self {
        assert!(n > 0 && side_ms > 0.0);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.unit_f64() * side_ms, rng.unit_f64() * side_ms))
            .collect();
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let dx = pts[a].0 - pts[b].0;
                let dy = pts[a].1 - pts[b].1;
                let ms = (dx * dx + dy * dy).sqrt();
                let d = SimDuration::from_nanos((ms * 1e6) as u64 + min_ms * 1_000_000);
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::MetricPlane)
    }

    /// Ring of `n` nodes; delay between `a` and `b` is `hop_ms` times the
    /// shorter hop count around the ring. Also a metric.
    pub fn ring(n: usize, hop_ms: u64) -> Self {
        assert!(n > 0);
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let fwd = b - a;
                let hops = fwd.min(n - fwd) as u64;
                let d = SimDuration::from_millis(hops * hop_ms);
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::Ring)
    }

    /// `clusters` equal groups; `intra_ms` within a group, `inter_ms`
    /// between groups (inter > intra keeps it metric).
    pub fn clustered(n: usize, clusters: usize, intra_ms: u64, inter_ms: u64) -> Self {
        assert!(n > 0 && clusters > 0);
        assert!(
            inter_ms >= intra_ms,
            "inter-cluster delay must dominate for metricity"
        );
        let mut delays = vec![SimDuration::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let same = (a % clusters) == (b % clusters);
                let ms = if same { intra_ms } else { inter_ms };
                let d = SimDuration::from_millis(ms);
                delays[a * n + b] = d;
                delays[b * n + a] = d;
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::Clustered)
    }

    /// Constant delay `d_ms` between every distinct pair.
    pub fn complete(n: usize, d_ms: u64) -> Self {
        assert!(n > 0);
        let mut delays = vec![SimDuration::ZERO; n * n];
        let d = SimDuration::from_millis(d_ms);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    delays[a * n + b] = d;
                }
            }
        }
        Topology::from_matrix(n, delays, TopologyKind::Complete)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// One-way message delay between two nodes. Zero for `a == b`.
    #[inline]
    pub fn delay(&self, a: ActorId, b: ActorId) -> SimDuration {
        self.delays[a.index() * self.n + b.index()]
    }

    /// Round-trip delay `2 × d(a, b)` — the cost of one remote object fetch
    /// (request + response), the quantity the paper's makespan analysis sums.
    #[inline]
    pub fn rtt(&self, a: ActorId, b: ActorId) -> SimDuration {
        self.delay(a, b) * 2
    }

    /// Mean one-way delay over distinct pairs.
    pub fn mean_delay(&self) -> SimDuration {
        if self.n < 2 {
            return SimDuration::ZERO;
        }
        let mut sum = 0u128;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    sum += self.delays[a * self.n + b].as_nanos() as u128;
                }
            }
        }
        let pairs = (self.n * (self.n - 1)) as u128;
        SimDuration::from_nanos((sum / pairs) as u64)
    }

    /// `Σ_i d(from, i)` — total one-way delay from `from` to every node,
    /// the term `Σ d(n0, ni)` in Lemmas 3.2/3.3.
    pub fn sum_delays_from(&self, from: ActorId) -> SimDuration {
        let mut sum = SimDuration::ZERO;
        for b in 0..self.n {
            sum += self.delays[from.index() * self.n + b];
        }
        sum
    }

    /// Length of a tour visiting `order` in sequence — the term
    /// `Σ d(n(i-1), n(i))` in Lemma 3.3.
    pub fn tour_length(&self, order: &[ActorId]) -> SimDuration {
        order
            .windows(2)
            .map(|w| self.delay(w[0], w[1]))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Greedy nearest-neighbour tour over all nodes starting at `start`.
    /// Rosenkrantz et al. (cited by the paper as [21]) bound NN tours within
    /// `O(log N)` of optimal on metric spaces; the analysis reproduction
    /// checks the paper's use of that bound.
    pub fn nearest_neighbour_tour(&self, start: ActorId) -> Vec<ActorId> {
        let mut visited = vec![false; self.n];
        let mut tour = Vec::with_capacity(self.n);
        let mut cur = start;
        visited[cur.index()] = true;
        tour.push(cur);
        for _ in 1..self.n {
            let mut best: Option<(usize, SimDuration)> = None;
            for (b, seen) in visited.iter().enumerate() {
                if !seen {
                    let d = self.delays[cur.index() * self.n + b];
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((b, d));
                    }
                }
            }
            let (b, _) = best.expect("unvisited node must exist");
            visited[b] = true;
            cur = ActorId(b as u32);
            tour.push(cur);
        }
        tour
    }

    /// Does the matrix satisfy the triangle inequality (within exact integer
    /// arithmetic)? `UniformRandom` topologies generally do not; plane/ring/
    /// clustered/complete ones do.
    pub fn is_metric(&self) -> bool {
        for a in 0..self.n {
            for b in 0..self.n {
                let dab = self.delays[a * self.n + b].as_nanos();
                for c in 0..self.n {
                    let via = self.delays[a * self.n + c].as_nanos() as u128
                        + self.delays[c * self.n + b].as_nanos() as u128;
                    if (dab as u128) > via {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Is the matrix symmetric with a zero diagonal? (Invariant check used
    /// by property tests.)
    pub fn is_well_formed(&self) -> bool {
        for a in 0..self.n {
            if !self.delays[a * self.n + a].is_zero() {
                return false;
            }
            for b in 0..self.n {
                if self.delays[a * self.n + b] != self.delays[b * self.n + a] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(2026)
    }

    #[test]
    fn uniform_random_in_range_and_well_formed() {
        let t = Topology::uniform_random(20, 1, 50, &mut rng());
        assert!(t.is_well_formed());
        for a in 0..20 {
            for b in 0..20 {
                if a != b {
                    let ms = t.delay(ActorId(a), ActorId(b)).as_millis();
                    assert!((1..=50).contains(&ms), "delay {ms}ms out of range");
                }
            }
        }
    }

    #[test]
    fn metric_plane_is_metric() {
        let t = Topology::metric_plane(15, 50.0, 1, &mut rng());
        assert!(t.is_well_formed());
        assert!(t.is_metric());
    }

    #[test]
    fn ring_distances() {
        let t = Topology::ring(6, 10);
        assert_eq!(t.delay(ActorId(0), ActorId(1)).as_millis(), 10);
        assert_eq!(t.delay(ActorId(0), ActorId(3)).as_millis(), 30);
        assert_eq!(t.delay(ActorId(0), ActorId(5)).as_millis(), 10); // wraps
        assert!(t.is_metric());
    }

    #[test]
    fn clustered_delays() {
        let t = Topology::clustered(8, 2, 2, 20);
        // nodes 0 and 2 share cluster (0 % 2 == 2 % 2)
        assert_eq!(t.delay(ActorId(0), ActorId(2)).as_millis(), 2);
        assert_eq!(t.delay(ActorId(0), ActorId(1)).as_millis(), 20);
        assert!(t.is_well_formed());
    }

    #[test]
    fn complete_constant() {
        let t = Topology::complete(5, 7);
        assert_eq!(t.mean_delay().as_millis(), 7);
        assert!(t.is_metric());
        assert_eq!(t.rtt(ActorId(0), ActorId(1)).as_millis(), 14);
    }

    #[test]
    fn sums_and_tours() {
        let t = Topology::ring(4, 10);
        // from node 0: d=0,10,20,10 -> 40 ms
        assert_eq!(t.sum_delays_from(ActorId(0)).as_millis(), 40);
        let tour = t.nearest_neighbour_tour(ActorId(0));
        assert_eq!(tour.len(), 4);
        assert_eq!(tour[0], ActorId(0));
        // NN tour on a ring is 10+10+10 = 30ms
        assert_eq!(t.tour_length(&tour).as_millis(), 30);
    }

    #[test]
    fn nn_tour_visits_each_node_once() {
        let t = Topology::uniform_random(30, 1, 50, &mut rng());
        let tour = t.nearest_neighbour_tour(ActorId(7));
        let mut seen: Vec<u32> = tour.iter().map(|a| a.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn determinism_per_seed() {
        let a = Topology::uniform_random(10, 1, 50, &mut SimRng::new(5));
        let b = Topology::uniform_random(10, 1, 50, &mut SimRng::new(5));
        for x in 0..10 {
            for y in 0..10 {
                assert_eq!(
                    a.delay(ActorId(x), ActorId(y)),
                    b.delay(ActorId(x), ActorId(y))
                );
            }
        }
    }
}
